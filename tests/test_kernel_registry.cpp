//===- tests/test_kernel_registry.cpp - Kernel dispatch tests -------------------===//
//
// Part of the DNNFusion reproduction. MIT license.
//
// The CPU-feature kernel registry: level resolution against mocked feature
// masks, registration/priority/fallback semantics on mock tables, the
// DNNFUSION_FORCE_KERNEL_LEVEL env hook, scalar-vs-AVX2 differential
// sweeps over the packed-GEMM shape grid (bit-identical by contract),
// the FMA tier's documented tolerance, forced-level dispatch through the
// reference kernels, and the cache-hit-then-redispatch property (kernel
// knobs are excluded from the CompilationCache key; a cached artifact
// re-resolves dispatch on the loading host).
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include "models/ModelZoo.h"
#include "ops/KernelRegistry.h"
#include "ops/Kernels.h"
#include "ops/KernelsAttention.h"
#include "ops/KernelsGemmPacked.h"
#include "serialize/CompilationCache.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unistd.h>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

constexpr uint32_t MaskNone = 0;
constexpr uint32_t MaskAvx2 = CpuFeatureAvx2;
constexpr uint32_t MaskAvx2Fma = CpuFeatureAvx2 | CpuFeatureFma;

/// True when this build + host can actually execute the AVX2 tiers (the
/// differential tests degrade to scalar-vs-scalar otherwise, which is
/// still a valid — if trivial — run of the same code path).
bool hostRunsAvx2() {
  return simdKernelsCompiledIn() && (dispatchFeatureMask() & CpuFeatureAvx2);
}

bool hostRunsFma() {
  return simdKernelsCompiledIn() &&
         (dispatchFeatureMask() & CpuFeatureFma) != 0 &&
         (dispatchFeatureMask() & CpuFeatureAvx2) != 0;
}

//===----------------------------------------------------------------------===//
// Level resolution against mocked feature masks
//===----------------------------------------------------------------------===//

TEST(KernelLevelResolution, AutoPicksHighestBitExactTier) {
  EXPECT_EQ(resolveKernelLevel(ForceKernelAuto, MaskNone),
            KernelLevel::Scalar);
  EXPECT_EQ(resolveKernelLevel(ForceKernelAuto, MaskAvx2), KernelLevel::Avx2);
  // FMA changes results (the one non-bit-exact tier); auto must never
  // select it even when the host supports it.
  EXPECT_EQ(resolveKernelLevel(ForceKernelAuto, MaskAvx2Fma),
            KernelLevel::Avx2);
}

TEST(KernelLevelResolution, ForcedLevelsClampDownNeverUp) {
  // Forced scalar always honored.
  EXPECT_EQ(resolveKernelLevel(0, MaskNone), KernelLevel::Scalar);
  EXPECT_EQ(resolveKernelLevel(0, MaskAvx2Fma), KernelLevel::Scalar);
  // Forced avx2 on a host without it runs scalar instead of faulting.
  EXPECT_EQ(resolveKernelLevel(1, MaskNone), KernelLevel::Scalar);
  EXPECT_EQ(resolveKernelLevel(1, MaskAvx2), KernelLevel::Avx2);
  EXPECT_EQ(resolveKernelLevel(1, MaskAvx2Fma), KernelLevel::Avx2);
  // Forced avx2fma needs both bits; AVX2-only clamps one step down.
  EXPECT_EQ(resolveKernelLevel(2, MaskAvx2Fma), KernelLevel::Avx2Fma);
  EXPECT_EQ(resolveKernelLevel(2, MaskAvx2), KernelLevel::Avx2);
  EXPECT_EQ(resolveKernelLevel(2, MaskNone), KernelLevel::Scalar);
  // FMA without AVX2 cannot run the 8-wide kernels at all.
  EXPECT_EQ(resolveKernelLevel(2, CpuFeatureFma), KernelLevel::Scalar);
  // Out-of-range forces clamp into the valid tier range first.
  EXPECT_EQ(resolveKernelLevel(7, MaskAvx2Fma), KernelLevel::Avx2Fma);
  EXPECT_EQ(resolveKernelLevel(-5, MaskAvx2), KernelLevel::Avx2);
}

TEST(KernelLevelResolution, NamesRoundTrip) {
  EXPECT_STREQ(kernelLevelName(KernelLevel::Scalar), "scalar");
  EXPECT_STREQ(kernelLevelName(KernelLevel::Avx2), "avx2");
  EXPECT_STREQ(kernelLevelName(KernelLevel::Avx2Fma), "avx2fma");
  for (KernelLevel L :
       {KernelLevel::Scalar, KernelLevel::Avx2, KernelLevel::Avx2Fma})
    EXPECT_EQ(parseKernelLevel(kernelLevelName(L)), static_cast<int>(L));
  EXPECT_EQ(parseKernelLevel("auto"), ForceKernelAuto);
  EXPECT_EQ(parseKernelLevel(""), ForceKernelAuto);
  EXPECT_EQ(parseKernelLevel(nullptr), ForceKernelAuto);
  EXPECT_EQ(parseKernelLevel("avx512"), ForceKernelAuto);
}

TEST(KernelLevelResolution, DispatchMaskReflectsBuild) {
  if (!simdKernelsCompiledIn()) {
    // Without the AVX2 translation units nothing but scalar can run,
    // whatever the silicon says.
    EXPECT_EQ(dispatchFeatureMask(), MaskNone);
  } else {
    // The dispatch mask never invents features the probe did not report.
    EXPECT_EQ(dispatchFeatureMask() & ~detectCpuFeatures(), MaskNone);
  }
  EXPECT_EQ(kernelLevelFeatures(KernelLevel::Scalar), MaskNone);
  EXPECT_EQ(kernelLevelFeatures(KernelLevel::Avx2), MaskAvx2);
  EXPECT_EQ(kernelLevelFeatures(KernelLevel::Avx2Fma), MaskAvx2Fma);
}

//===----------------------------------------------------------------------===//
// Registry table semantics (mock entries)
//===----------------------------------------------------------------------===//

void fakeKernelA() {}
void fakeKernelB() {}
void fakeKernelC() {}

KernelEntry makeEntry(KernelLevel Level, uint32_t Features, int Priority,
                      const char *Name, void *Fn,
                      bool (*Supports)(const KernelProblem &) = nullptr) {
  KernelEntry E;
  E.Kind = KernelKind::GemmPackedRows;
  E.Level = Level;
  E.RequiredFeatures = Features;
  E.Priority = Priority;
  E.Name = Name;
  E.Fn = Fn;
  E.Supports = Supports;
  return E;
}

TEST(KernelRegistryTable, HighestSatisfiablePriorityWins) {
  KernelRegistry R;
  R.add(makeEntry(KernelLevel::Scalar, MaskNone, 0, "scalar",
                  reinterpret_cast<void *>(&fakeKernelA)));
  R.add(makeEntry(KernelLevel::Avx2, MaskAvx2, 10, "avx2",
                  reinterpret_cast<void *>(&fakeKernelB)));
  R.add(makeEntry(KernelLevel::Avx2Fma, MaskAvx2Fma, 20, "avx2fma",
                  reinterpret_cast<void *>(&fakeKernelC)));
  KernelProblem P;
  P.M = P.N = P.K = 64;
  P.NR = 16;

  const KernelEntry *E =
      R.resolve(KernelKind::GemmPackedRows, P, KernelLevel::Avx2Fma,
                MaskAvx2Fma);
  ASSERT_NE(E, nullptr);
  EXPECT_STREQ(E->Name, "avx2fma");

  // MaxLevel caps the tier even when features would allow more.
  E = R.resolve(KernelKind::GemmPackedRows, P, KernelLevel::Avx2, MaskAvx2Fma);
  ASSERT_NE(E, nullptr);
  EXPECT_STREQ(E->Name, "avx2");

  // Missing features drop candidates regardless of MaxLevel.
  E = R.resolve(KernelKind::GemmPackedRows, P, KernelLevel::Avx2Fma, MaskAvx2);
  ASSERT_NE(E, nullptr);
  EXPECT_STREQ(E->Name, "avx2");
  E = R.resolve(KernelKind::GemmPackedRows, P, KernelLevel::Avx2Fma, MaskNone);
  ASSERT_NE(E, nullptr);
  EXPECT_STREQ(E->Name, "scalar");

  // Wrong kind resolves nothing.
  EXPECT_EQ(R.resolve(KernelKind::EltwiseChunk, P, KernelLevel::Avx2Fma,
                      MaskAvx2Fma),
            nullptr);
}

TEST(KernelRegistryTable, SupportsPredicateGatesGeometry) {
  KernelRegistry R;
  R.add(makeEntry(KernelLevel::Scalar, MaskNone, 0, "scalar",
                  reinterpret_cast<void *>(&fakeKernelA)));
  R.add(makeEntry(KernelLevel::Avx2, MaskAvx2, 10, "avx2-wide",
                  reinterpret_cast<void *>(&fakeKernelB),
                  [](const KernelProblem &P) { return P.NR >= 8; }));
  KernelProblem Wide, Narrow;
  Wide.NR = 16;
  Narrow.NR = 4;

  const KernelEntry *E =
      R.resolve(KernelKind::GemmPackedRows, Wide, KernelLevel::Avx2, MaskAvx2);
  ASSERT_NE(E, nullptr);
  EXPECT_STREQ(E->Name, "avx2-wide");
  // The narrow panel falls through to scalar even though level and
  // features would admit the SIMD entry.
  E = R.resolve(KernelKind::GemmPackedRows, Narrow, KernelLevel::Avx2,
                MaskAvx2);
  ASSERT_NE(E, nullptr);
  EXPECT_STREQ(E->Name, "scalar");
}

TEST(KernelRegistryTable, BuiltinsAlwaysCarryScalarFallback) {
  const KernelRegistry &B = KernelRegistry::builtins();
  for (KernelKind Kind :
       {KernelKind::GemmPackedRows, KernelKind::FusedAttentionRows,
        KernelKind::EltwiseChunk}) {
    std::vector<KernelEntry> Entries = B.entries(Kind);
    ASSERT_FALSE(Entries.empty());
    bool HasScalar = false;
    for (const KernelEntry &E : Entries) {
      if (E.Level == KernelLevel::Scalar) {
        HasScalar = true;
        // The fallback must be executable on any host.
        EXPECT_EQ(E.RequiredFeatures, MaskNone);
      }
      // Every tier above scalar declares the features it needs.
      if (E.Level != KernelLevel::Scalar) {
        EXPECT_NE(E.RequiredFeatures & MaskAvx2, MaskNone);
      }
      EXPECT_NE(E.Fn, nullptr);
    }
    EXPECT_TRUE(HasScalar);
  }
  if (simdKernelsCompiledIn()) {
    // The build compiled the AVX2 units: the GEMM family registers both
    // SIMD tiers, attention and eltwise the bit-exact one.
    EXPECT_GE(B.entries(KernelKind::GemmPackedRows).size(), 3u);
    EXPECT_GE(B.entries(KernelKind::FusedAttentionRows).size(), 2u);
    EXPECT_GE(B.entries(KernelKind::EltwiseChunk).size(), 2u);
  }
}

//===----------------------------------------------------------------------===//
// Env hook and config precedence
//===----------------------------------------------------------------------===//

class ForcedLevelEnv : public ::testing::Test {
protected:
  void SetUp() override {
    const char *Old = getenv("DNNFUSION_FORCE_KERNEL_LEVEL");
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
  }
  void TearDown() override {
    if (HadOld)
      setenv("DNNFUSION_FORCE_KERNEL_LEVEL", OldValue.c_str(), 1);
    else
      unsetenv("DNNFUSION_FORCE_KERNEL_LEVEL");
    refreshForcedKernelLevelFromEnv();
  }
  void force(const char *Value) {
    setenv("DNNFUSION_FORCE_KERNEL_LEVEL", Value, 1);
    refreshForcedKernelLevelFromEnv();
  }
  bool HadOld = false;
  std::string OldValue;
};

TEST_F(ForcedLevelEnv, EnvForcesTierForDefaultConfigs) {
  force("scalar");
  KernelConfig Default;
  EXPECT_EQ(effectiveKernelLevel(Default), KernelLevel::Scalar);

  force("avx2");
  EXPECT_EQ(effectiveKernelLevel(Default),
            hostRunsAvx2() ? KernelLevel::Avx2 : KernelLevel::Scalar);

  force("avx2fma");
  KernelLevel WantFma = hostRunsFma()    ? KernelLevel::Avx2Fma
                        : hostRunsAvx2() ? KernelLevel::Avx2
                                         : KernelLevel::Scalar;
  EXPECT_EQ(effectiveKernelLevel(Default), WantFma);

  force("auto");
  EXPECT_EQ(effectiveKernelLevel(Default),
            hostRunsAvx2() ? KernelLevel::Avx2 : KernelLevel::Scalar);
}

TEST_F(ForcedLevelEnv, ExplicitConfigBeatsEnv) {
  force("avx2");
  KernelConfig C;
  C.ForceKernelLevel = 0;
  EXPECT_EQ(effectiveKernelLevel(C), KernelLevel::Scalar);

  force("scalar");
  C.ForceKernelLevel = 1;
  EXPECT_EQ(effectiveKernelLevel(C),
            hostRunsAvx2() ? KernelLevel::Avx2 : KernelLevel::Scalar);
}

TEST_F(ForcedLevelEnv, GarbageEnvFallsBackToAuto) {
  force("pentium-mmx");
  KernelConfig Default;
  EXPECT_EQ(effectiveKernelLevel(Default),
            hostRunsAvx2() ? KernelLevel::Avx2 : KernelLevel::Scalar);
}

//===----------------------------------------------------------------------===//
// Scalar-vs-SIMD differential: packed GEMM micro tile
//===----------------------------------------------------------------------===//

/// Runs one packed-GEMM problem at \p Level and compares against the
/// scalar reference: bit-identical for Scalar/Avx2, FMA-tolerance for
/// Avx2Fma. \p ATransposed stores A column-major to exercise the strided
/// A-operand path (the Gemm transA layout).
void gemmDifferentialCase(int64_t M, int64_t N, int64_t K, int MR, int NR,
                          bool WithBias, bool ATransposed, uint64_t Seed) {
  SCOPED_TRACE(formatString("M=%lld N=%lld K=%lld MR=%d NR=%d bias=%d tA=%d",
                            static_cast<long long>(M),
                            static_cast<long long>(N),
                            static_cast<long long>(K), MR, NR, WithBias,
                            ATransposed));
  Rng R(Seed);
  Tensor A(Shape({ATransposed ? K : M, ATransposed ? M : K}));
  Tensor B(Shape({K, N}));
  fillRandom(A, R, -1.0f, 1.0f);
  fillRandom(B, R, -1.0f, 1.0f);
  std::vector<float> Bias(static_cast<size_t>(M));
  for (float &V : Bias)
    V = R.nextFloatInRange(-0.5f, 0.5f);

  NR = clampPackNR(NR);
  std::vector<float> Packed(
      static_cast<size_t>(packedPanelElems(K, N, NR)));
  packBPanels(B.data(), N, 1, K, N, NR, Packed.data());

  int64_t ARow = ATransposed ? 1 : K;
  int64_t ACol = ATransposed ? M : 1;
  const float *RowBias = WithBias ? Bias.data() : nullptr;

  std::vector<float> Ref(static_cast<size_t>(M * N));
  gemmPackedRowsScalar(A.data(), ARow, ACol, Packed.data(), Ref.data(), N, 0,
                       M, N, K, MR, NR, RowBias);

  // The bit-exact tier through the public dispatcher (falls back to the
  // scalar micro tile when the host/build lacks AVX2 or NR is narrow —
  // trivially identical, still a valid run of the dispatch path).
  std::vector<float> Simd(static_cast<size_t>(M * N), -42.0f);
  gemmPackedRows(A.data(), ARow, ACol, Packed.data(), Simd.data(), N, 0, M, N,
                 K, MR, NR, RowBias, KernelLevel::Avx2);
  for (int64_t I = 0; I < M * N; ++I)
    ASSERT_EQ(Ref[static_cast<size_t>(I)], Simd[static_cast<size_t>(I)])
        << "avx2 diverged at element " << I;

  // The FMA tier: deliberately different rounding, bounded difference.
  std::vector<float> Fma(static_cast<size_t>(M * N), -42.0f);
  gemmPackedRows(A.data(), ARow, ACol, Packed.data(), Fma.data(), N, 0, M, N,
                 K, MR, NR, RowBias, KernelLevel::Avx2Fma);
  for (int64_t I = 0; I < M * N; ++I) {
    float Want = Ref[static_cast<size_t>(I)];
    float Got = Fma[static_cast<size_t>(I)];
    ASSERT_NEAR(Want, Got, 2e-3f * std::max(1.0f, std::fabs(Want)))
        << "avx2fma outside tolerance at element " << I;
  }
}

TEST(GemmPackedDifferential, ShapeGridScalarVsSimd) {
  uint64_t Seed = 0xd15ba7c4;
  // Odd M/N/K so every row-block and panel tail path runs; MR below,
  // at, and above the SIMD kernel's internal 4-row blocking; every
  // supported panel width (NR=4 exercises the Supports-gate fallback).
  for (int MR : {1, 3, 8})
    for (int NR : {4, 8, 16, 32})
      for (bool WithBias : {false, true})
        for (bool ATransposed : {false, true})
          gemmDifferentialCase(13, 37, 19, MR, NR, WithBias, ATransposed,
                               ++Seed);
  // A large square case where all full-tile fast paths dominate.
  gemmDifferentialCase(64, 64, 64, 8, 16, true, false, ++Seed);
  // Single-column and single-row degenerate geometries.
  gemmDifferentialCase(1, 32, 24, 8, 8, false, false, ++Seed);
  gemmDifferentialCase(16, 8, 1, 4, 8, true, false, ++Seed);
}

TEST(GemmPackedDifferential, Avx2TierActuallyDispatchesOnCapableHosts) {
  if (!hostRunsAvx2())
    GTEST_SKIP() << "host/build has no AVX2 tier";
  EXPECT_NE(resolveGemmPackedRows(KernelLevel::Avx2, 64, 64, 16), nullptr);
  if (hostRunsFma()) {
    EXPECT_NE(resolveGemmPackedRows(KernelLevel::Avx2Fma, 64, 64, 16),
              nullptr);
  }
  // Narrow panels stay scalar (the Supports gate).
  EXPECT_EQ(resolveGemmPackedRows(KernelLevel::Avx2, 64, 64, 4), nullptr);
  // Scalar level resolves no SIMD entry by definition.
  EXPECT_EQ(resolveGemmPackedRows(KernelLevel::Scalar, 64, 64, 16), nullptr);
}

//===----------------------------------------------------------------------===//
// Scalar-vs-SIMD differential: fused attention rows
//===----------------------------------------------------------------------===//

TEST(FusedAttentionDifferential, RowsBitIdenticalAcrossTiers) {
  FusedAttentionRowsFn Simd = simd::fusedAttentionRowsAvx2();
  if (!Simd)
    GTEST_SKIP() << "build has no AVX2 attention kernel";

  // S crosses the KeyTile boundary (tile rescale points must line up);
  // Dh is deliberately not a multiple of 8 (vector tails).
  const int64_t Batches = 2, S = FusedAttentionKeyTile + 7, Dh = 24;
  Rng R(0xa77e);
  Tensor Q(Shape({Batches, S, Dh})), Kt(Shape({Batches, Dh, S})),
      V(Shape({Batches, S, Dh})), Mask(Shape({Batches, S, S}));
  fillRandom(Q, R, -1.0f, 1.0f);
  fillRandom(Kt, R, -1.0f, 1.0f);
  fillRandom(V, R, -1.0f, 1.0f);
  fillRandom(Mask, R, -0.5f, 0.0f);

  for (bool Causal : {false, true})
    for (bool WithMask : {false, true}) {
      if (Causal && WithMask)
        continue; // The scalar kernel ignores the mask under causal.
      SCOPED_TRACE(formatString("causal=%d mask=%d", Causal, WithMask));
      AttentionRowArgs Ar;
      Ar.Q = Q.data();
      Ar.Kt = Kt.data();
      Ar.V = V.data();
      Ar.Mask = WithMask ? Mask.data() : nullptr;
      Ar.MaskBatchStride = S * S;
      Ar.Scale = 0.125f;
      Ar.Causal = Causal;
      Ar.S = S;
      Ar.Dh = Dh;

      std::vector<float> RefOut(static_cast<size_t>(Batches * S * Dh));
      std::vector<float> SimdOut(static_cast<size_t>(Batches * S * Dh),
                                 -42.0f);
      Ar.Out = RefOut.data();
      fusedAttentionRowsScalar(Ar, 0, Batches * S);
      Ar.Out = SimdOut.data();
      Simd(Ar, 0, Batches * S);
      for (size_t I = 0; I < RefOut.size(); ++I)
        ASSERT_EQ(RefOut[I], SimdOut[I]) << "element " << I;
    }
}

//===----------------------------------------------------------------------===//
// Scalar-vs-SIMD differential: eltwise tape ops
//===----------------------------------------------------------------------===//

TEST(EltwiseChunkDifferential, CoveredOpsBitIdenticalIncludingEdgeValues) {
  EltwiseChunkFn Simd = simd::eltwiseChunkAvx2();
  if (!Simd)
    GTEST_SKIP() << "build has no AVX2 eltwise kernel";

  // 67 elements: eight full vectors plus a 3-wide scalar tail. The edge
  // slots carry the values where naive SIMD translations break: signed
  // zeros (Neg/Min/Max), NaN (cmp+blend ordering), infinities, and
  // denormals.
  const int64_t Count = 67;
  Rng R(0xe17);
  std::vector<float> X(Count), Y(Count);
  for (int64_t I = 0; I < Count; ++I) {
    X[static_cast<size_t>(I)] = R.nextFloatInRange(-2.0f, 2.0f);
    Y[static_cast<size_t>(I)] = R.nextFloatInRange(-2.0f, 2.0f);
  }
  X[0] = 0.0f;
  X[1] = -0.0f;
  Y[1] = 0.0f;
  X[2] = std::numeric_limits<float>::quiet_NaN();
  Y[3] = std::numeric_limits<float>::quiet_NaN();
  X[4] = std::numeric_limits<float>::infinity();
  Y[5] = -std::numeric_limits<float>::infinity();
  X[6] = std::numeric_limits<float>::denorm_min();

  struct Case {
    OpKind Op;
    int Arity;
    float ParamA;
  };
  const Case Cases[] = {
      {OpKind::Add, 2, 0.0f},        {OpKind::Sub, 2, 0.0f},
      {OpKind::Mul, 2, 0.0f},        {OpKind::Div, 2, 0.0f},
      {OpKind::Maximum, 2, 0.0f},    {OpKind::Minimum, 2, 0.0f},
      {OpKind::Relu, 1, 0.0f},       {OpKind::LeakyRelu, 1, 0.1f},
      {OpKind::Square, 1, 0.0f},     {OpKind::Reciprocal, 1, 0.0f},
      {OpKind::Neg, 1, 0.0f},        {OpKind::Identity, 1, 0.0f},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(opKindName(C.Op));
    ScalarParams P;
    P.A = C.ParamA;
    const float *Args[2] = {X.data(), Y.data()};
    std::vector<float> Ref(Count), Got(Count, -42.0f);
    evalElementwiseChunk(C.Op, P, Args, C.Arity, Ref.data(), Count);
    ASSERT_TRUE(Simd(C.Op, P, Args, C.Arity, Got.data(), Count));
    // Bitwise comparison: NaN payloads and signed zeros must match too.
    for (int64_t I = 0; I < Count; ++I) {
      uint32_t RefBits, GotBits;
      std::memcpy(&RefBits, &Ref[static_cast<size_t>(I)], 4);
      std::memcpy(&GotBits, &Got[static_cast<size_t>(I)], 4);
      ASSERT_EQ(RefBits, GotBits)
          << "element " << I << ": scalar " << Ref[static_cast<size_t>(I)]
          << " vs simd " << Got[static_cast<size_t>(I)];
    }
  }

  // Uncovered ops decline (caller falls back to the scalar chunk loop).
  ScalarParams P;
  const float *Args[1] = {X.data()};
  std::vector<float> Out(Count);
  EXPECT_FALSE(Simd(OpKind::Sqrt, P, Args, 1, Out.data(), Count));
}

//===----------------------------------------------------------------------===//
// Forced-level dispatch through the reference kernels
//===----------------------------------------------------------------------===//

Tensor randomTensor(const Shape &Sh, Rng &R, float Lo = -1.0f,
                    float Hi = 1.0f) {
  Tensor T(Sh);
  fillRandom(T, R, Lo, Hi);
  return T;
}

/// Runs \p Kind at every forced tier and checks the tier contract:
/// scalar == avx2 bit-for-bit, avx2fma within tolerance, and the per-tier
/// dispatch counters record what actually ran.
void refKernelForcedSweep(OpKind Kind, const AttrMap &Attrs,
                          const std::vector<const Tensor *> &Inputs,
                          const Shape &OutShape) {
  SCOPED_TRACE(opKindName(Kind));
  auto RunAt = [&](int Force, EngineCounters *Counters) {
    Tensor Out(OutShape);
    KernelConfig Config;
    Config.ForceKernelLevel = Force;
    KernelRuntime Rt;
    Rt.Counters = Counters;
    runRefKernel(Kind, Attrs, Inputs, Out, Config, Rt);
    return Out;
  };

  EngineCounters ScalarCtrs, SimdCtrs, FmaCtrs;
  Tensor RefOut = RunAt(0, &ScalarCtrs);
  Tensor SimdOut = RunAt(1, &SimdCtrs);
  Tensor FmaOut = RunAt(2, &FmaCtrs);
  Tensor AutoOut = RunAt(ForceKernelAuto, nullptr);

  ASSERT_EQ(maxAbsDiff(RefOut, SimdOut), 0.0f) << "scalar vs avx2";
  ASSERT_EQ(maxAbsDiff(RefOut, AutoOut), 0.0f) << "scalar vs auto";
  for (int64_t I = 0; I < RefOut.numElements(); ++I) {
    float Want = RefOut.data()[I];
    ASSERT_NEAR(Want, FmaOut.data()[I],
                2e-3f * std::max(1.0f, std::fabs(Want)))
        << "scalar vs avx2fma at " << I;
  }

  // Audit trail: the forced-scalar run took only scalar dispatches; the
  // forced-SIMD runs took their tier exactly when the host supports it.
  EXPECT_GT(ScalarCtrs.KernelScalarCalls, 0);
  EXPECT_EQ(ScalarCtrs.KernelAvx2Calls, 0);
  EXPECT_EQ(ScalarCtrs.KernelAvx2FmaCalls, 0);
  if (hostRunsAvx2()) {
    EXPECT_GT(SimdCtrs.KernelAvx2Calls, 0);
    EXPECT_EQ(SimdCtrs.KernelScalarCalls, 0);
  } else {
    EXPECT_GT(SimdCtrs.KernelScalarCalls, 0);
  }
  if (hostRunsFma()) {
    EXPECT_GT(FmaCtrs.KernelAvx2FmaCalls, 0);
  }
}

TEST(RefKernelForcedDispatch, MatMulGemmConvAgreeAcrossTiers) {
  Rng R(0xbead);
  {
    // Above the packed-profitability threshold so the registry path runs.
    Tensor A = randomTensor(Shape({32, 96}), R);
    Tensor B = randomTensor(Shape({96, 64}), R);
    refKernelForcedSweep(OpKind::MatMul, AttrMap(), {&A, &B},
                         Shape({32, 64}));
  }
  {
    // Gemm with both transposes and a broadcast bias row.
    Tensor A = randomTensor(Shape({96, 32}), R);
    Tensor B = randomTensor(Shape({64, 96}), R);
    Tensor Bias = randomTensor(Shape({1, 64}), R);
    AttrMap Attrs;
    Attrs.set("transA", 1).set("transB", 1);
    refKernelForcedSweep(OpKind::Gemm, Attrs, {&A, &B, &Bias},
                         Shape({32, 64}));
  }
  {
    // Conv meeting the im2col eligibility gate (Fg>=4, K>=8,
    // OutSpatial>=8): 3x3 same-padded over an 8x8 image.
    Tensor X = randomTensor(Shape({1, 8, 8, 8}), R);
    Tensor W = randomTensor(Shape({8, 8, 3, 3}), R, -0.5f, 0.5f);
    Tensor Bias = randomTensor(Shape({8}), R);
    AttrMap Attrs;
    Attrs.set("strides", std::vector<int64_t>{1, 1})
        .set("pads", std::vector<int64_t>{1, 1});
    refKernelForcedSweep(OpKind::Conv, Attrs, {&X, &W, &Bias},
                         Shape({1, 8, 8, 8}));
  }
}

//===----------------------------------------------------------------------===//
// Cache hit then redispatch
//===----------------------------------------------------------------------===//

class CacheRedispatch : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = formatString("/tmp/dnnf_kernel_cache_%d", static_cast<int>(getpid()));
    Clean();
  }
  void TearDown() override { Clean(); }
  void Clean() {
    for (const CacheEntryInfo &E : CompilationCache(Dir).entries())
      removeFileIfExists(E.Path);
    rmdir(Dir.c_str());
  }
  std::string Dir;
};

TEST_F(CacheRedispatch, KernelKnobsExcludedFromKeyAndReResolvedOnLoad) {
  Graph G = buildModel("TinyBERT");

  CompileOptions ForcedScalar;
  ForcedScalar.CacheDir = Dir;
  ForcedScalar.Codegen.Kernels.ForceKernelLevel = 0;
  CompileOptions Default;
  Default.CacheDir = Dir;

  // The registry knob must not fragment the cache: both configurations
  // key to the same artifact.
  ASSERT_EQ(CompilationCache::fingerprint(G, ForcedScalar),
            CompilationCache::fingerprint(G, Default));

  // Cold store under forced-scalar...
  CompiledModel Cold =
      cantFail(compileModel(buildModel("TinyBERT"), ForcedScalar));
  ASSERT_FALSE(Cold.CacheHit);
  // ...then a default-config load must hit and adopt the caller's knobs,
  // not resurrect the stored host's forced tier.
  CompiledModel Warm = cantFail(compileModel(buildModel("TinyBERT"), Default));
  ASSERT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.Codegen.Kernels.ForceKernelLevel, ForceKernelAuto);

  // Blocks are rebuilt on load, so every step's dispatch stamp reflects
  // the *loading* host's resolution (auto), not the storing forced level.
  KernelConfig DefaultKernels;
  int8_t WantLevel = static_cast<int8_t>(effectiveKernelLevel(DefaultKernels));
  int Stamped = 0;
  for (const CompiledBlock &B : Warm.Blocks)
    for (const CompiledStep &S : B.Steps)
      if (S.K != CompiledStep::Kind::FusedLayerNorm) {
        EXPECT_EQ(S.DispatchLevel, WantLevel);
        ++Stamped;
      }
  EXPECT_GT(Stamped, 0);
  // The cold model was compiled under forced-scalar and stamps that.
  for (const CompiledBlock &B : Cold.Blocks)
    for (const CompiledStep &S : B.Steps)
      if (S.K != CompiledStep::Kind::FusedLayerNorm) {
        EXPECT_EQ(S.DispatchLevel, 0);
      }

  // And the redispatched artifact executes bit-identically to the forced
  // run (the Avx2 tier's core contract).
  std::vector<Tensor> Inputs = randomInputs(G, 97);
  ExecutionContext ECold(Cold), EWarm(Warm);
  std::vector<Tensor> WantOut = ECold.run(Inputs);
  std::vector<Tensor> GotOut = EWarm.run(Inputs);
  std::optional<std::string> Diff =
      compareOutputs(WantOut, GotOut, 0.0f, 0.0f);
  EXPECT_FALSE(Diff.has_value()) << *Diff;
}

} // namespace
