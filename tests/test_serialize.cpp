//===- tests/test_serialize.cpp - Persistence subsystem tests --------------------===//
//
// Coverage for the serialization layer (src/serialize/): graph artifacts
// (binary + text form), compiled-model artifacts, the on-disk compilation
// cache, and the untrusted-input discipline — zoo-wide save -> load -> run
// bit-identity against the in-memory compile, plus truncation/bit-flip
// corruption sweeps where every sample must reject with a Status, never
// abort.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include "graph/GraphBuilder.h"
#include "models/ModelZoo.h"
#include "serialize/ByteStream.h"
#include "serialize/CompilationCache.h"
#include "serialize/GraphSerializer.h"
#include "serialize/ModelSerializer.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <cstring>
#include <ctime>
#include <limits>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

namespace {

using namespace dnnfusion;
using namespace dnnfusion::testutil;

/// Per-process temp path so parallel ctest shards never collide.
std::string tempPath(const char *Name) {
  return formatString("/tmp/dnnf_%d_%s", static_cast<int>(getpid()), Name);
}

/// Exact (bitwise) graph equality: structure, names, dead slots, weights.
void expectGraphsIdentical(const Graph &A, const Graph &B) {
  ASSERT_EQ(A.numNodes(), B.numNodes());
  EXPECT_EQ(A.toString(), B.toString());
  EXPECT_EQ(A.outputs(), B.outputs());
  for (NodeId Id = 0; Id < A.numNodes(); ++Id) {
    const Node &NA = A.node(Id);
    const Node &NB = B.node(Id);
    ASSERT_EQ(NA.Dead, NB.Dead) << "node " << Id;
    if (NA.Dead)
      continue;
    EXPECT_EQ(NA.Kind, NB.Kind) << "node " << Id;
    EXPECT_EQ(NA.Name, NB.Name) << "node " << Id;
    EXPECT_EQ(NA.Inputs, NB.Inputs) << "node " << Id;
    EXPECT_TRUE(NA.OutShape == NB.OutShape) << "node " << Id;
    EXPECT_TRUE(NA.Attrs == NB.Attrs) << "node " << Id;
    if (NA.Kind == OpKind::Constant) {
      ASSERT_EQ(NA.ConstValue.byteSize(), NB.ConstValue.byteSize());
      EXPECT_EQ(NA.ConstValue.dtype(), NB.ConstValue.dtype());
      EXPECT_EQ(std::memcmp(NA.ConstValue.data(), NB.ConstValue.data(),
                            NA.ConstValue.byteSize()),
                0)
          << "constant " << Id << " payload not bit-identical";
    }
  }
}

/// Bitwise output equality — serialization must not perturb a single ULP.
void expectBitIdentical(const std::vector<Tensor> &A,
                        const std::vector<Tensor> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_TRUE(A[I].shape() == B[I].shape()) << "output " << I;
    EXPECT_EQ(
        std::memcmp(A[I].data(), B[I].data(), A[I].byteSize()), 0)
        << "output " << I << " not bit-identical";
  }
}

//===----------------------------------------------------------------------===//
// ByteStream primitives
//===----------------------------------------------------------------------===//

TEST(ByteStream, PrimitivesRoundtripLittleEndian) {
  ByteWriter W;
  W.u8(0xab);
  W.u16(0x1234);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.i32(-7);
  W.i64(-1234567890123ll);
  W.f32(3.5f);
  W.f64(-0.0);
  W.str("hello\0world"); // Embedded NUL survives: length-prefixed.
  ByteReader R(W.buffer());
  EXPECT_EQ(R.u8(), 0xab);
  EXPECT_EQ(R.u16(), 0x1234);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.i32(), -7);
  EXPECT_EQ(R.i64(), -1234567890123ll);
  EXPECT_EQ(R.f32(), 3.5f);
  EXPECT_EQ(R.f64(), -0.0);
  EXPECT_EQ(R.str(), std::string("hello")); // "hello\0world" truncates at
                                            // the literal's first NUL —
                                            // what std::string(const char*)
                                            // produced on the write side.
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(ByteStream, WireEncodingIsLittleEndian) {
  ByteWriter W;
  W.u32(0x01020304);
  const std::string &B = W.buffer();
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(B[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(B[3]), 0x01);
}

TEST(ByteStream, ReaderFailureIsStickyAndCarriesOffset) {
  ByteWriter W;
  W.u16(7);
  ByteReader R(W.buffer());
  EXPECT_EQ(R.u16(), 7);
  EXPECT_EQ(R.u32(), 0u); // Past the end: fails.
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::DataLoss);
  EXPECT_NE(R.status().message().find("byte 2"), std::string::npos);
  EXPECT_EQ(R.u8(), 0); // Still failed; still no abort.
  EXPECT_FALSE(R.ok());
}

TEST(ByteStream, HostileCountRejectsBeforeAllocating) {
  ByteWriter W;
  W.u32(0xffffffffu); // Claims 4 billion elements...
  W.u8(1);            // ...backed by one byte.
  ByteReader R(W.buffer());
  EXPECT_EQ(R.count(4), 0u);
  EXPECT_FALSE(R.ok());
}

//===----------------------------------------------------------------------===//
// Graph artifacts: binary and text forms
//===----------------------------------------------------------------------===//

/// A small graph exercising every serializer feature: attrs of all four
/// types, explicit names needing escapes, a dead slot, multiple outputs.
Graph buildTrickyGraph() {
  GraphBuilder B(/*Seed=*/3);
  NodeId X = B.input(Shape({2, 3}), "in \"quoted\"\n");
  NodeId W = B.graph().addConstant(Tensor::full(Shape({3, 4}), -0.0f), "w");
  NodeId Mm = B.binary(OpKind::MatMul, X, W);
  NodeId Cast = B.graph().addOp(OpKind::Cast, {Mm},
                                AttrMap().set("to", "f32"), "cast\tname");
  NodeId Clip = B.graph().addOp(
      OpKind::Clip, {Cast},
      AttrMap().set("min", -1.5).set("max", 2.5).set("tag", "x"));
  NodeId Tr = B.graph().addOp(OpKind::Transpose, {Clip},
                              AttrMap().set("perm", std::vector<int64_t>{1, 0}));
  // A node that DCE will tombstone: feeds nothing.
  B.relu(Mm);
  B.markOutput(Clip);
  B.markOutput(Tr);
  Graph G = B.take();
  G.eraseDeadNodes();
  G.verify();
  return G;
}

TEST(GraphArtifact, BinaryRoundtripPreservesEverything) {
  Graph G = buildTrickyGraph();
  Expected<Graph> Restored =
      deserializeGraphArtifact(serializeGraphArtifact(G));
  ASSERT_TRUE(Restored.ok()) << Restored.status().toString();
  expectGraphsIdentical(G, *Restored);
}

TEST(GraphArtifact, TextFormRoundtripPreservesEverything) {
  Graph G = buildTrickyGraph();
  std::string Text = graphToText(G);
  // Human-diffable: one line per node, ids and op names in the clear.
  EXPECT_NE(Text.find("dnnfusion-graph-text 1"), std::string::npos);
  EXPECT_NE(Text.find("MatMul"), std::string::npos);
  EXPECT_NE(Text.find("= dead"), std::string::npos);
  Expected<Graph> Restored = graphFromText(Text);
  ASSERT_TRUE(Restored.ok()) << Restored.status().toString();
  expectGraphsIdentical(G, *Restored);
}

TEST(GraphArtifact, TextFormPreservesWeightsBitExactly) {
  GraphBuilder B(/*Seed=*/5);
  // Values chosen to break any decimal-printing shortcut: denormal,
  // negative zero, an irrational-ish fraction, infinity.
  Tensor W(Shape({4}));
  W.at(0) = 1e-42f;
  W.at(1) = -0.0f;
  W.at(2) = 0.1f;
  W.at(3) = std::numeric_limits<float>::infinity();
  NodeId X = B.input(Shape({4}), "x");
  B.markOutput(B.add(X, B.graph().addConstant(std::move(W), "w")));
  Graph G = B.take();
  Expected<Graph> Restored = graphFromText(graphToText(G));
  ASSERT_TRUE(Restored.ok()) << Restored.status().toString();
  expectGraphsIdentical(G, *Restored);
}

TEST(GraphArtifact, TextFormRejectsMalformedDocuments) {
  Graph G = buildTrickyGraph();
  std::string Text = graphToText(G);
  const char *Bad[] = {
      "",
      "not a graph\n",
      "dnnfusion-graph-text 2\nnodes 0\noutputs %0\n",  // Unknown version.
      "dnnfusion-graph-text 1\nnodes 1\noutputs %0\n",  // Missing node.
      "dnnfusion-graph-text 1\nnodes 1\n%0 = Frobnicate() \"x\" : 1\noutputs %0\n",
      "dnnfusion-graph-text 1\nnodes 1\n%0 = Input \"x\" : 2x2\n", // No outputs.
      "dnnfusion-graph-text 1\nnodes 1\n%1 = Input \"x\" : 2x2\noutputs %1\n",
      // A 2^32+0 reference must not truncate into an alias of node %0.
      "dnnfusion-graph-text 1\nnodes 1\n%0 = Input \"x\" : 2x2\noutputs %4294967296\n",
      // An element product overflowing int64 must fail the shape cap, not
      // wrap negative and abort inside the constant's Tensor allocation.
      "dnnfusion-graph-text 1\nnodes 1\n"
      "%0 = Constant \"c\" : 2147483648x4294967296 f32 : 0x0p+0\noutputs %0\n",
  };
  for (const char *Doc : Bad) {
    Expected<Graph> R = graphFromText(Doc);
    EXPECT_FALSE(R.ok()) << "accepted: " << Doc;
  }
  // Semantically invalid but syntactically fine: caught by validate().
  Expected<Graph> NoOut = graphFromText(
      "dnnfusion-graph-text 1\nnodes 1\n%0 = Input \"x\" : 2x2\noutputs\n");
  EXPECT_FALSE(NoOut.ok());
}

TEST(GraphArtifact, TextFormAcceptsCommentsAndBlankLines) {
  std::string Text = "# a hand-written model\n\ndnnfusion-graph-text 1\n"
                     "nodes 2\n"
                     "%0 = Input \"x\" : 2x2\n"
                     "# the identity\n"
                     "%1 = Relu(%0) \"r\" : 2x2\n"
                     "outputs %1\n";
  Expected<Graph> G = graphFromText(Text);
  ASSERT_TRUE(G.ok()) << G.status().toString();
  EXPECT_EQ(G->countLayers(), 1);
}

TEST(GraphArtifact, FromPartsRejectsInconsistentConstants) {
  // The validate() gate behind every deserializer: a constant whose
  // payload disagrees with its declared shape must be rejected.
  std::vector<Node> Nodes(2);
  Nodes[0].Kind = OpKind::Constant;
  Nodes[0].OutShape = Shape({4});
  Nodes[0].ConstValue = Tensor::zeros(Shape({2})); // Wrong payload.
  Nodes[1].Kind = OpKind::Input;
  Nodes[1].OutShape = Shape({4});
  Nodes[1].Name = "x";
  Expected<Graph> G = Graph::fromParts(Nodes, {0});
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::InvalidGraph);

  Nodes[0].ConstValue = Tensor(); // Missing payload.
  EXPECT_FALSE(Graph::fromParts(Nodes, {0}).ok());

  Nodes[0].ConstValue = Tensor::zeros(Shape({4})); // Fixed.
  EXPECT_TRUE(Graph::fromParts(Nodes, {0}).ok());
}

//===----------------------------------------------------------------------===//
// Zoo-wide compiled-model roundtrip (acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(ModelArtifact, ZooWideSaveLoadRunBitIdentity) {
  for (const ModelZooEntry &Entry : modelZoo()) {
    SCOPED_TRACE(Entry.Info.Name);
    Graph G = Entry.Build();
    std::vector<Tensor> Inputs = randomInputs(G, /*Seed=*/17);
    CompiledModel M = cantFail(compileModel(std::move(G)));

    Expected<CompiledModel> Loaded =
        deserializeCompiledModel(serializeCompiledModel(M));
    ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();

    // The restored model must be the same *program*: identical plan
    // shape, schedule, memory layout — and bit-identical outputs.
    EXPECT_EQ(Loaded->Plan.Blocks.size(), M.Plan.Blocks.size());
    EXPECT_EQ(Loaded->Schedule.numLevels(), M.Schedule.numLevels());
    EXPECT_EQ(Loaded->Memory.ArenaBytes, M.Memory.ArenaBytes);
    EXPECT_EQ(Loaded->Memory.WavefrontSafe, M.Memory.WavefrontSafe);
    EXPECT_EQ(Loaded->Signature.toString(), M.Signature.toString());

    ExecutionContext Original(M);
    ExecutionContext Restored(*Loaded);
    expectBitIdentical(Original.run(Inputs), Restored.run(Inputs));
  }
}

TEST(ModelArtifact, FileRoundtripThroughSaveAndLoad) {
  std::string Path = tempPath("artifact_roundtrip.dnnf");
  Graph G = buildModel("TinyBERT");
  std::vector<Tensor> Inputs = randomInputs(G, 23);
  CompiledModel M = cantFail(compileModel(std::move(G)));
  ASSERT_TRUE(saveModel(M, Path).ok());

  Expected<CompiledModel> Loaded = loadModel(Path);
  ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();
  ExecutionContext Original(M);
  ExecutionContext Restored(*Loaded);
  expectBitIdentical(Original.run(Inputs), Restored.run(Inputs));
  removeFileIfExists(Path);
}

TEST(ModelArtifact, GraphFileRoundtripCompilesEquivalently) {
  std::string Path = tempPath("graph_artifact.dnnf");
  Graph G = buildModel("EfficientNet-B0");
  ASSERT_TRUE(saveGraph(G, Path).ok());
  Expected<Graph> Loaded = loadGraph(Path);
  ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();
  expectGraphsIdentical(G, *Loaded);

  std::vector<Tensor> Inputs = randomInputs(G, 31);
  CompiledModel M1 = cantFail(compileModel(std::move(G)));
  CompiledModel M2 = cantFail(compileModel(Loaded.takeValue()));
  ExecutionContext E1(M1), E2(M2);
  expectBitIdentical(E1.run(Inputs), E2.run(Inputs));
  removeFileIfExists(Path);
}

TEST(ModelArtifact, MissingFileIsNotFound) {
  Expected<CompiledModel> M = loadModel(tempPath("no_such_artifact.dnnf"));
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::NotFound);
}

//===----------------------------------------------------------------------===//
// Corruption discipline: no byte stream may abort
//===----------------------------------------------------------------------===//

class ArtifactCorruption : public ::testing::Test {
protected:
  void SetUp() override {
    CompiledModel M =
        cantFail(compileModel(buildModel("TinyBERT"), CompileOptions()));
    Blob = serializeCompiledModel(M);
  }
  std::string Blob;
};

TEST_F(ArtifactCorruption, EveryTruncationRejects) {
  // Dense sweep over the header/section-table region, strided over the
  // bulk. Every prefix must reject with a Status (DataLoss), never abort.
  for (size_t Len = 0; Len < Blob.size();
       Len += (Len < 256 ? 1 : Blob.size() / 199 + 1)) {
    Expected<CompiledModel> M =
        deserializeCompiledModel(Blob.substr(0, Len));
    ASSERT_FALSE(M.ok()) << "prefix of " << Len << " bytes accepted";
    EXPECT_EQ(M.status().code(), ErrorCode::DataLoss);
  }
}

TEST_F(ArtifactCorruption, EveryBitFlipRejects) {
  // The checksum covers every payload byte and the header fields are each
  // individually checked, so any single-bit flip must be detected.
  for (size_t Offset = 0; Offset < Blob.size();
       Offset += (Offset < 64 ? 1 : Blob.size() / 331 + 1)) {
    std::string Corrupt = Blob;
    Corrupt[Offset] =
        static_cast<char>(Corrupt[Offset] ^ (1 << (Offset % 8)));
    Expected<CompiledModel> M = deserializeCompiledModel(Corrupt);
    ASSERT_FALSE(M.ok()) << "bit flip at byte " << Offset << " accepted";
  }
}

TEST_F(ArtifactCorruption, VersionDriftRejectsWithClearDiagnostic) {
  std::string Future = Blob;
  Future[4] = 99; // Format version lives at bytes 4..7 (see FORMAT.md).
  Expected<CompiledModel> M = deserializeCompiledModel(Future);
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::DataLoss);
  EXPECT_NE(M.status().message().find("version"), std::string::npos);
}

TEST_F(ArtifactCorruption, WrongKindRejects) {
  Graph G = buildModel("TinyBERT");
  // A graph artifact is not a model artifact, and vice versa.
  EXPECT_FALSE(deserializeCompiledModel(serializeGraphArtifact(G)).ok());
  EXPECT_FALSE(deserializeGraphArtifact(Blob).ok());
}

//===----------------------------------------------------------------------===//
// Compilation cache
//===----------------------------------------------------------------------===//

class CompilationCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = tempPath("compile_cache");
    Clean();
  }
  void TearDown() override { Clean(); }
  void Clean() {
    // The cache names every artifact model-<key>.dnnf; remove what a test
    // may have left behind, then the directory.
    CompileOptions Opt;
    Opt.CacheDir = Dir;
    for (const ModelZooEntry &Entry : modelZoo())
      removeFileIfExists(
          CompilationCache(Dir).pathForKey(CompilationCache::fingerprint(
              Entry.Build(), Opt)));
    rmdir(Dir.c_str());
  }
  std::string Dir;
};

TEST_F(CompilationCacheTest, MissThenHitWithBitIdenticalExecution) {
  CompileOptions Opt;
  Opt.CacheDir = Dir;
  Graph G = buildModel("EfficientNet-B0");
  std::vector<Tensor> Inputs = randomInputs(G, 41);

  CompiledModel Plain = cantFail(compileModel(G, CompileOptions()));
  CompiledModel Cold = cantFail(compileModel(G, Opt));
  EXPECT_FALSE(Cold.CacheHit);
  CompiledModel Warm = cantFail(compileModel(G, Opt));
  EXPECT_TRUE(Warm.CacheHit);

  ExecutionContext EPlain(Plain), ECold(Cold), EWarm(Warm);
  std::vector<Tensor> Want = EPlain.run(Inputs);
  expectBitIdentical(Want, ECold.run(Inputs));
  expectBitIdentical(Want, EWarm.run(Inputs));
}

TEST_F(CompilationCacheTest, KeyCoversOptionsAndGraphContent) {
  Graph G = buildModel("TinyBERT");
  CompileOptions A;
  A.CacheDir = Dir;
  CompileOptions B = A;
  B.EnableFusion = false;
  EXPECT_NE(CompilationCache::fingerprint(G, A),
            CompilationCache::fingerprint(G, B));
  // CacheDir itself must not perturb the key (same content, moved dir).
  CompileOptions C = A;
  C.CacheDir = Dir + "_elsewhere";
  EXPECT_EQ(CompilationCache::fingerprint(G, A),
            CompilationCache::fingerprint(G, C));
  EXPECT_NE(CompilationCache::fingerprint(G, A),
            CompilationCache::fingerprint(buildModel("DistilBERT"), A));
}

TEST_F(CompilationCacheTest, CorruptEntryFallsBackToCleanRecompile) {
  CompileOptions Opt;
  Opt.CacheDir = Dir;
  Graph G = buildModel("TinyBERT");
  cantFail(compileModel(G, Opt)); // Populate.

  std::string Path =
      CompilationCache(Dir).pathForKey(CompilationCache::fingerprint(G, Opt));
  Expected<std::string> Bytes = readFileBytes(Path);
  ASSERT_TRUE(Bytes.ok());
  std::string Corrupt = *Bytes;
  Corrupt[Corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(writeFileAtomic(Path, Corrupt).ok());

  // Corruption is a miss, not an error; the recompile repairs the entry.
  CompiledModel M = cantFail(compileModel(G, Opt));
  EXPECT_FALSE(M.CacheHit);
  CompiledModel Again = cantFail(compileModel(G, Opt));
  EXPECT_TRUE(Again.CacheHit);
}

TEST_F(CompilationCacheTest, LruEvictionHonorsBudgetAndRecency) {
  // Three same-shaped graphs with different weights: equal artifact sizes,
  // distinct content keys.
  auto Build = [](uint64_t Seed) {
    GraphBuilder B(Seed);
    NodeId X = B.input(Shape({8, 16}));
    NodeId W = B.weight(Shape({16, 16}));
    B.markOutput(B.relu(B.binary(OpKind::MatMul, X, W)));
    return B.take();
  };
  Graph GA = Build(1), GB = Build(2), GC = Build(3);
  CompileOptions Opt;
  Opt.CacheDir = Dir;
  CompilationCache Cache(Dir);
  std::string PathA = Cache.pathForKey(CompilationCache::fingerprint(GA, Opt));
  std::string PathB = Cache.pathForKey(CompilationCache::fingerprint(GB, Opt));
  std::string PathC = Cache.pathForKey(CompilationCache::fingerprint(GC, Opt));
  ASSERT_NE(PathA, PathB);

  cantFail(compileModel(GA, Opt)); // Unbudgeted store to size one artifact.
  struct stat St;
  ASSERT_EQ(stat(PathA.c_str(), &St), 0);
  const int64_t One = static_cast<int64_t>(St.st_size);
  Opt.CacheMaxBytes = 2 * One + One / 2; // Two artifacts fit, three don't.

  cantFail(compileModel(GB, Opt));
  // Age both entries, A older than B; a warm hit on A must refresh its
  // recency so B becomes the least-recently-used entry.
  time_t Now = time(nullptr);
  struct utimbuf OldA = {Now - 100, Now - 100};
  struct utimbuf OldB = {Now - 50, Now - 50};
  ASSERT_EQ(utime(PathA.c_str(), &OldA), 0);
  ASSERT_EQ(utime(PathB.c_str(), &OldB), 0);
  CompiledModel Warm = cantFail(compileModel(GA, Opt));
  EXPECT_TRUE(Warm.CacheHit);

  // Storing C overflows the budget: B (LRU) is evicted, not A (touched).
  cantFail(compileModel(GC, Opt));
  EXPECT_TRUE(fileExists(PathA));
  EXPECT_TRUE(fileExists(PathC));
  EXPECT_FALSE(fileExists(PathB));

  // An evicted entry is a plain miss: clean recompile, re-stored, and the
  // now-oldest artifact (A, whose touch predates C's store) goes instead.
  CompiledModel Again = cantFail(compileModel(GB, Opt));
  EXPECT_FALSE(Again.CacheHit);
  EXPECT_TRUE(fileExists(PathB));
  EXPECT_TRUE(fileExists(PathC));
  EXPECT_FALSE(fileExists(PathA));

  // A budget smaller than one artifact never rejects the store: the entry
  // just written is exempt, everything else is evicted.
  Opt.CacheMaxBytes = One / 2;
  cantFail(compileModel(GA, Opt));
  EXPECT_TRUE(fileExists(PathA));
  EXPECT_FALSE(fileExists(PathB));
  EXPECT_FALSE(fileExists(PathC));
  CompiledModel Oversized = cantFail(compileModel(GA, Opt));
  EXPECT_TRUE(Oversized.CacheHit);

  removeFileIfExists(PathA);
  removeFileIfExists(PathB);
  removeFileIfExists(PathC);
}

TEST_F(CompilationCacheTest, InspectionApiListsVerifiesRemovesAndEvicts) {
  // The surface behind the dnnf-cache CLI: entries / verifyEntry /
  // removeEntry / public evictToBudget.
  auto Build = [](uint64_t Seed) {
    GraphBuilder B(Seed);
    NodeId X = B.input(Shape({4, 8}));
    NodeId W = B.weight(Shape({8, 8}));
    B.markOutput(B.relu(B.binary(OpKind::MatMul, X, W)));
    return B.take();
  };
  Graph GA = Build(10), GB = Build(11);
  CompileOptions Opt;
  Opt.CacheDir = Dir;
  CompilationCache Cache(Dir);
  const uint64_t KeyA = CompilationCache::fingerprint(GA, Opt);
  const uint64_t KeyB = CompilationCache::fingerprint(GB, Opt);
  cantFail(compileModel(GA, Opt));
  cantFail(compileModel(GB, Opt));

  // entries() sees both, with keys parsed back from the filenames and the
  // path/size agreeing with the filesystem.
  std::vector<CacheEntryInfo> Entries = Cache.entries();
  ASSERT_EQ(Entries.size(), 2u);
  for (const CacheEntryInfo &E : Entries) {
    EXPECT_TRUE(E.Key == KeyA || E.Key == KeyB);
    EXPECT_EQ(E.Path, Cache.pathForKey(E.Key));
    EXPECT_GT(E.Bytes, 0);
  }

  // Verification: clean entries pass, a bit-flipped one reports an error
  // (and never aborts), a missing key is NotFound.
  EXPECT_TRUE(Cache.verifyEntry(KeyA).ok());
  EXPECT_TRUE(Cache.verifyEntry(KeyB).ok());
  std::string PathB = Cache.pathForKey(KeyB);
  Expected<std::string> Bytes = readFileBytes(PathB);
  ASSERT_TRUE(Bytes.ok());
  std::string Corrupt = *Bytes;
  Corrupt[Corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(writeFileAtomic(PathB, Corrupt).ok());
  EXPECT_FALSE(Cache.verifyEntry(KeyB).ok());
  EXPECT_EQ(Cache.verifyEntry(~KeyA).code(), ErrorCode::NotFound);

  // removeEntry: present -> gone; absent -> typed NotFound.
  EXPECT_TRUE(Cache.removeEntry(KeyB).ok());
  EXPECT_FALSE(fileExists(PathB));
  EXPECT_EQ(Cache.removeEntry(KeyB).code(), ErrorCode::NotFound);

  // Public evictToBudget: a zero budget clears every remaining artifact.
  Cache.evictToBudget(0);
  EXPECT_TRUE(Cache.entries().empty());
}

TEST_F(CompilationCacheTest, VersionDriftColdStartsInsteadOfFailing) {
  CompileOptions Opt;
  Opt.CacheDir = Dir;
  Graph G = buildModel("TinyBERT");
  cantFail(compileModel(G, Opt));
  std::string Path =
      CompilationCache(Dir).pathForKey(CompilationCache::fingerprint(G, Opt));
  Expected<std::string> Bytes = readFileBytes(Path);
  ASSERT_TRUE(Bytes.ok());
  std::string Drifted = *Bytes;
  Drifted[4] = 77; // Pretend a future format version wrote this entry.
  ASSERT_TRUE(writeFileAtomic(Path, Drifted).ok());
  CompiledModel M = cantFail(compileModel(G, Opt));
  EXPECT_FALSE(M.CacheHit); // Clean recompile, no error escaped.
}

} // namespace
