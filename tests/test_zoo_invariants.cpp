//===- tests/test_zoo_invariants.cpp - whole-zoo compiler invariants ----------------===//
//
// Structural invariants the compiler must uphold on every real model, not
// just unit-test graphs: verified plans, the one-Many-to-Many-per-block
// property, Table 3 conformance of every adjacent fused pair, compiled
// block/slot consistency, and memory-plan sanity.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"
#include "core/Ecg.h"
#include "core/FusionAnalysis.h"
#include "core/TransformerPatterns.h"
#include "models/ModelZoo.h"
#include "runtime/ExecutionContext.h"

#include <gtest/gtest.h>

#include <string>

using namespace dnnfusion;

namespace {

class ZooInvariants : public ::testing::TestWithParam<int> {
protected:
  const ModelZooEntry &entry() const {
    return modelZoo()[static_cast<size_t>(GetParam())];
  }
};

TEST_P(ZooInvariants, CompiledModelUpholdsPlannerInvariants) {
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  M.Plan.verify(M.G);
  EXPECT_LT(M.Plan.fusedLayerCount(), M.G.countLayers()) << entry().Info.Name;

  Ecg E(M.G);
  std::vector<std::vector<NodeId>> Consumers = M.G.computeConsumers();
  for (const FusionBlock &B : M.Plan.Blocks) {
    // Carved transformer blocks deliberately break the mapping-type rules:
    // they hold the whole matched subgraph (two MatMuls plus softmax, or a
    // nine-node layernorm) and compile to one fused step instead.
    if (matchAttentionBlock(M.G, Consumers, B.Members) ||
        matchLayerNormBlock(M.G, Consumers, B.Members))
      continue;
    // At most one Many-to-Many operator per block (red Table 3 cells).
    int Heavy = 0;
    for (NodeId Id : B.Members)
      Heavy += E.mappingType(Id) == MappingType::ManyToMany;
    EXPECT_LE(Heavy, 1);
    // Every adjacent producer/consumer pair inside a block must be a
    // non-red combination under Table 3.
    for (NodeId Id : B.Members)
      for (NodeId In : M.G.node(Id).Inputs)
        if (B.contains(In)) {
          EXPECT_NE(fusionVerdict(E.mappingType(In), E.mappingType(Id)),
                    FusionVerdict::FuseBreak)
              << entry().Info.Name << " node " << Id;
        }
  }
}

TEST_P(ZooInvariants, TransformerModelsCompileToFusedAttentionBlocks) {
  const std::string Name = entry().Info.Name;
  bool IsTransformer = Name.find("BERT") != std::string::npos ||
                       Name.find("GPT") != std::string::npos;
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  int Attention = 0, Norm = 0;
  for (const CompiledBlock &B : M.Blocks)
    for (const CompiledStep &S : B.Steps) {
      Attention += S.K == CompiledStep::Kind::FusedAttention;
      Norm += S.K == CompiledStep::Kind::FusedLayerNorm;
    }
  if (IsTransformer) {
    // Every transformer in the zoo decomposes attention the same way; all
    // of it must reach the single-pass kernels.
    EXPECT_GT(Attention, 0) << Name;
    EXPECT_GT(Norm, 0) << Name;
  } else {
    EXPECT_EQ(Attention, 0) << Name;
  }

  // The carving must be inert when the toggles are off: same graphs, only
  // generic blocks.
  CompileOptions Plain;
  Plain.Codegen.FuseAttention = false;
  Plain.Codegen.FuseNorm = false;
  CompiledModel U = cantFail(compileModel(entry().Build(), Plain));
  for (const CompiledBlock &B : U.Blocks)
    for (const CompiledStep &S : B.Steps)
      EXPECT_TRUE(S.K == CompiledStep::Kind::RefKernel ||
                  S.K == CompiledStep::Kind::Expression)
          << Name;
}

TEST_P(ZooInvariants, DifferentialMatrixHoldsWithFusedKernels) {
  // Zoo-wide enforcement of the fused configurations: every matrix config
  // (fused attention/epilogues on, each dimension toggled off, the
  // bit-identity pairings) must reproduce the unoptimized reference at
  // its own tolerance on the real models, not just on fuzzed graphs. The
  // transformer family is where the fused kernels actually fire; the rest
  // of the zoo pins the carving as a no-op.
  testutil::expectMatchesReferenceUnderMatrix(entry().Build(),
                                              4000 + GetParam());
}

TEST_P(ZooInvariants, CompiledBlocksHaveConsistentSlots) {
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  for (size_t BI = 0; BI < M.Blocks.size(); ++BI) {
    const CompiledBlock &CB = M.Blocks[BI];
    int NumSlots = CB.numSlots();
    ASSERT_EQ(CB.ExternalInputs.size(),
              M.Plan.Blocks[BI].ExternalInputs.size());
    for (const CompiledStep &S : CB.Steps) {
      ASSERT_GE(S.OutputSlot, static_cast<int>(CB.ExternalInputs.size()));
      ASSERT_LT(S.OutputSlot, NumSlots);
      for (int Slot : S.InputSlots)
        ASSERT_LT(Slot, NumSlots);
      for (const DftNode &N : S.Tree.Nodes)
        if (N.K == DftNode::Kind::Leaf) {
          ASSERT_GE(N.BufferSlot, 0);
          ASSERT_LT(N.BufferSlot, NumSlots);
        }
    }
    // Every block output has exactly one local buffer flagged for it.
    for (NodeId Out : M.Plan.Blocks[BI].Outputs) {
      int Found = 0;
      for (const CompiledBlock::LocalBuffer &L : CB.Locals)
        Found += L.IsBlockOutput && L.Node == Out;
      EXPECT_EQ(Found, 1) << entry().Info.Name << " block " << BI;
    }
  }
}

TEST_P(ZooInvariants, MemoryPlanCoversEveryBlockOutput) {
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  for (const FusionBlock &B : M.Plan.Blocks)
    for (NodeId Out : B.Outputs)
      EXPECT_GE(M.Memory.ArenaOffsetOfNode[static_cast<size_t>(Out)], 0);
  EXPECT_GT(M.Memory.ArenaBytes, 0);
  EXPECT_GT(M.Memory.WeightBytes, 0);
}

TEST_P(ZooInvariants, RewritingNeverIncreasesFlops) {
  Graph G = entry().Build();
  RewriteStats Stats = rewriteGraph(G);
  EXPECT_LE(Stats.FlopsAfter, Stats.FlopsBefore) << entry().Info.Name;
  EXPECT_LE(Stats.LayersAfter, Stats.LayersBefore) << entry().Info.Name;
  G.verify();
}

INSTANTIATE_TEST_SUITE_P(
    All, ZooInvariants, ::testing::Range(0, 15),
    [](const ::testing::TestParamInfo<int> &Info) {
      std::string Name =
          modelZoo()[static_cast<size_t>(Info.param)].Info.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
