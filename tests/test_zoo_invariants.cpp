//===- tests/test_zoo_invariants.cpp - whole-zoo compiler invariants ----------------===//
//
// Structural invariants the compiler must uphold on every real model, not
// just unit-test graphs: verified plans, the one-Many-to-Many-per-block
// property, Table 3 conformance of every adjacent fused pair, compiled
// block/slot consistency, and memory-plan sanity.
//
//===----------------------------------------------------------------------===//

#include "core/Ecg.h"
#include "core/FusionAnalysis.h"
#include "models/ModelZoo.h"
#include "runtime/ExecutionContext.h"

#include <gtest/gtest.h>

using namespace dnnfusion;

namespace {

class ZooInvariants : public ::testing::TestWithParam<int> {
protected:
  const ModelZooEntry &entry() const {
    return modelZoo()[static_cast<size_t>(GetParam())];
  }
};

TEST_P(ZooInvariants, CompiledModelUpholdsPlannerInvariants) {
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  M.Plan.verify(M.G);
  EXPECT_LT(M.Plan.fusedLayerCount(), M.G.countLayers()) << entry().Info.Name;

  Ecg E(M.G);
  for (const FusionBlock &B : M.Plan.Blocks) {
    // At most one Many-to-Many operator per block (red Table 3 cells).
    int Heavy = 0;
    for (NodeId Id : B.Members)
      Heavy += E.mappingType(Id) == MappingType::ManyToMany;
    EXPECT_LE(Heavy, 1);
    // Every adjacent producer/consumer pair inside a block must be a
    // non-red combination under Table 3.
    for (NodeId Id : B.Members)
      for (NodeId In : M.G.node(Id).Inputs)
        if (B.contains(In)) {
          EXPECT_NE(fusionVerdict(E.mappingType(In), E.mappingType(Id)),
                    FusionVerdict::FuseBreak)
              << entry().Info.Name << " node " << Id;
        }
  }
}

TEST_P(ZooInvariants, CompiledBlocksHaveConsistentSlots) {
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  for (size_t BI = 0; BI < M.Blocks.size(); ++BI) {
    const CompiledBlock &CB = M.Blocks[BI];
    int NumSlots = CB.numSlots();
    ASSERT_EQ(CB.ExternalInputs.size(),
              M.Plan.Blocks[BI].ExternalInputs.size());
    for (const CompiledStep &S : CB.Steps) {
      ASSERT_GE(S.OutputSlot, static_cast<int>(CB.ExternalInputs.size()));
      ASSERT_LT(S.OutputSlot, NumSlots);
      for (int Slot : S.InputSlots)
        ASSERT_LT(Slot, NumSlots);
      for (const DftNode &N : S.Tree.Nodes)
        if (N.K == DftNode::Kind::Leaf) {
          ASSERT_GE(N.BufferSlot, 0);
          ASSERT_LT(N.BufferSlot, NumSlots);
        }
    }
    // Every block output has exactly one local buffer flagged for it.
    for (NodeId Out : M.Plan.Blocks[BI].Outputs) {
      int Found = 0;
      for (const CompiledBlock::LocalBuffer &L : CB.Locals)
        Found += L.IsBlockOutput && L.Node == Out;
      EXPECT_EQ(Found, 1) << entry().Info.Name << " block " << BI;
    }
  }
}

TEST_P(ZooInvariants, MemoryPlanCoversEveryBlockOutput) {
  CompiledModel M = cantFail(compileModel(entry().Build(), CompileOptions()));
  for (const FusionBlock &B : M.Plan.Blocks)
    for (NodeId Out : B.Outputs)
      EXPECT_GE(M.Memory.ArenaOffsetOfNode[static_cast<size_t>(Out)], 0);
  EXPECT_GT(M.Memory.ArenaBytes, 0);
  EXPECT_GT(M.Memory.WeightBytes, 0);
}

TEST_P(ZooInvariants, RewritingNeverIncreasesFlops) {
  Graph G = entry().Build();
  RewriteStats Stats = rewriteGraph(G);
  EXPECT_LE(Stats.FlopsAfter, Stats.FlopsBefore) << entry().Info.Name;
  EXPECT_LE(Stats.LayersAfter, Stats.LayersBefore) << entry().Info.Name;
  G.verify();
}

INSTANTIATE_TEST_SUITE_P(
    All, ZooInvariants, ::testing::Range(0, 15),
    [](const ::testing::TestParamInfo<int> &Info) {
      std::string Name =
          modelZoo()[static_cast<size_t>(Info.param)].Info.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
