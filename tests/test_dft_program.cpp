//===- tests/test_dft_program.cpp - Compiled execution engine --------------------===//
//
// The compiled execution engine end to end: DftTree -> DftProgram tape
// lowering (register allocation, variant selection, router/gather edge
// cases), program-vs-treewalk and packed-vs-naive bit-identity at the
// kernel, block, and model-zoo levels, the prepack store lifecycle
// (compile, cache hit, save/load), and the engine-path observability
// counters.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include "core/CodeEmitter.h"
#include "core/DftProgram.h"
#include "graph/GraphBuilder.h"
#include "models/ModelZoo.h"
#include "ops/KernelsGemmPacked.h"
#include "ops/OpSchema.h"
#include "runtime/InferenceSession.h"
#include "serialize/ModelSerializer.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

/// Compiles every operator of \p G into one block (the whole graph as a
/// single fused kernel).
CompiledBlock compileWholeGraph(const Graph &G,
                                const CodegenOptions &Opt = {}) {
  std::vector<NodeId> Ops;
  for (int Id = 0; Id < G.numNodes(); ++Id) {
    const Node &N = G.node(Id);
    if (!N.Dead && N.Kind != OpKind::Input && N.Kind != OpKind::Constant)
      Ops.push_back(Id);
  }
  FusionPlan Plan = planFromGroups(G, {Ops});
  return compileBlock(G, Plan.Blocks[0], Opt);
}

int countInstrs(const DftProgram &P, DftInstr::Kind K) {
  int N = 0;
  for (const DftInstr &I : P.Instrs)
    N += I.K == K ? 1 : 0;
  return N;
}

/// Runs every expression step of \p CB through both engines over
/// deterministic slot data and expects bit-identical outputs for every
/// chunk size in \p ChunkSizes.
void expectStepBitIdentity(const Graph &G, const CompiledBlock &CB,
                           std::initializer_list<int> ChunkSizes = {256}) {
  Rng R(17);
  // Deterministic backing store for every slot (externals and locals).
  std::vector<std::vector<float>> Store;
  std::vector<const float *> Slots;
  for (NodeId Id : CB.ExternalInputs) {
    Store.emplace_back(
        static_cast<size_t>(G.node(Id).OutShape.numElements()));
    for (float &V : Store.back())
      V = R.nextFloatInRange(-2.0f, 2.0f);
    Slots.push_back(Store.back().data());
  }
  for (const CompiledBlock::LocalBuffer &L : CB.Locals) {
    Store.emplace_back(static_cast<size_t>(L.Sh.numElements()));
    for (float &V : Store.back())
      V = R.nextFloatInRange(-2.0f, 2.0f);
    Slots.push_back(Store.back().data());
  }
  int Checked = 0;
  for (const CompiledStep &S : CB.Steps) {
    if (S.K != CompiledStep::Kind::Expression)
      continue;
    ASSERT_FALSE(S.Program.empty());
    int64_t E = S.OutShape.numElements();
    for (int Chunk : ChunkSizes) {
      std::vector<float> Tree(static_cast<size_t>(E), -7.0f);
      std::vector<float> Prog(static_cast<size_t>(E), 7.0f);
      S.Tree.evaluate(Slots, Tree.data(), Chunk);
      S.Program.execute(Slots, Prog.data(), Chunk);
      for (int64_t I = 0; I < E; ++I)
        ASSERT_EQ(Tree[static_cast<size_t>(I)], Prog[static_cast<size_t>(I)])
            << "chunk " << Chunk << " elem " << I << " origin " << S.Origin;
    }
    ++Checked;
  }
  EXPECT_GT(Checked, 0);
}

//===----------------------------------------------------------------------===//
// Tape lowering: variant selection and register allocation
//===----------------------------------------------------------------------===//

TEST(DftProgramLowering, ElementwiseChainReusesOneRegister) {
  GraphBuilder B(1);
  NodeId H = B.input(Shape({1024}));
  for (int I = 0; I < 8; ++I)
    H = B.unary(I % 2 ? OpKind::Sigmoid : OpKind::Relu, H);
  B.markOutput(H);
  CompiledBlock CB = compileWholeGraph(B.graph());
  ASSERT_EQ(CB.Steps.size(), 1u);
  const DftProgram &P = CB.Steps[0].Program;
  // Eight unary operators over a contiguous leaf: eight Eltwise
  // instructions, zero gathers/maps, and last-use reuse keeps the whole
  // chain in a single chunk register.
  EXPECT_EQ(P.Instrs.size(), 8u);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::Eltwise), 8);
  EXPECT_EQ(P.NumValueRegs, 1);
  EXPECT_EQ(P.NumIndexSets, 1);
  // The leaf feeds the first operator as a zero-copy contiguous slot.
  EXPECT_TRUE(P.Instrs.front().Args[0].IsSlot);
  // The final operator writes the chunk output directly.
  EXPECT_EQ(P.Instrs.back().Dst, DftProgram::OutputReg);
  expectStepBitIdentity(B.graph(), CB, {16, 256, 512});
}

TEST(DftProgramLowering, BinaryTreeRegisterHighWaterStaysSmall) {
  // add(add(relu(x), sigmoid(x)), add(tanh(x), neg(x))): a balanced
  // binary expression needs at most depth+1 live registers.
  GraphBuilder B(2);
  NodeId X = B.input(Shape({512}));
  NodeId L = B.add(B.relu(X), B.sigmoid(X));
  NodeId R = B.add(B.tanhOp(X), B.unary(OpKind::Neg, X));
  B.markOutput(B.add(L, R));
  CompiledBlock CB = compileWholeGraph(B.graph());
  ASSERT_EQ(CB.Steps.size(), 1u);
  const DftProgram &P = CB.Steps[0].Program;
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::Eltwise), 7);
  EXPECT_LE(P.NumValueRegs, 3);
  expectStepBitIdentity(B.graph(), CB);
}

TEST(DftProgramLowering, FoldedTransposeBecomesMapAndGather) {
  GraphBuilder B(3);
  NodeId X = B.input(Shape({8, 16, 4}));
  B.markOutput(B.relu(B.transpose(X, {1, 0, 2})));
  CompiledBlock CB = compileWholeGraph(B.graph());
  ASSERT_EQ(CB.Steps.size(), 1u);
  const DftProgram &P = CB.Steps[0].Program;
  // Transpose folds to an index chain: one MapIndices producing an
  // explicit set, one LoadGather through it, one Relu.
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::MapIndices), 1);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::LoadGather), 1);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::Eltwise), 1);
  EXPECT_EQ(P.NumIndexSets, 2);
  expectStepBitIdentity(B.graph(), CB, {17, 256});
}

TEST(DftProgramLowering, PureMovementRootGathersStraightToOutput) {
  // A staged transpose (no elementwise op at all): the root-wrap Identity
  // must fold away, leaving a gather that writes the output span.
  GraphBuilder B(4);
  NodeId X = B.input(Shape({8, 16}));
  B.markOutput(B.transpose(X, {1, 0}));
  CompiledBlock CB = compileWholeGraph(B.graph());
  ASSERT_EQ(CB.Steps.size(), 1u);
  const DftProgram &P = CB.Steps[0].Program;
  ASSERT_EQ(P.Instrs.size(), 2u);
  EXPECT_EQ(P.Instrs[0].K, DftInstr::Kind::MapIndices);
  EXPECT_EQ(P.Instrs[1].K, DftInstr::Kind::LoadGather);
  EXPECT_EQ(P.Instrs[1].Dst, DftProgram::OutputReg);
  EXPECT_EQ(P.NumValueRegs, 1); // Allocated, then retargeted at out.
  expectStepBitIdentity(B.graph(), CB, {8, 100, 256});
}

TEST(DftProgramLowering, ConcatLowersToRouterSplitMerge) {
  GraphBuilder B(5);
  NodeId X = B.input(Shape({3, 5}));
  NodeId Y = B.input(Shape({3, 7}));
  B.markOutput(B.relu(B.concat({X, Y}, 1)));
  CompiledBlock CB = compileWholeGraph(B.graph());
  ASSERT_EQ(CB.Steps.size(), 1u);
  const DftProgram &P = CB.Steps[0].Program;
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::RouterSplit), 1);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::RouterMerge), 1);
  // Branch leaves always gather (their sets are compacted, never
  // contiguous).
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::LoadGather), 2);
  // One set per branch plus the implicit contiguous set.
  EXPECT_EQ(P.NumIndexSets, 3);
  // Chunk sizes that split, straddle, and cover whole branch rows.
  expectStepBitIdentity(B.graph(), CB, {4, 5, 12, 256});
}

TEST(DftProgramLowering, NestedConcatWithMappedBranches) {
  // concat(transpose(x), concat(y, broadcast-add)) exercises routers under
  // routers, mapped branch chains, and gathers inside branch subtrees.
  GraphBuilder B(6);
  NodeId X = B.input(Shape({4, 6}));
  NodeId Y = B.input(Shape({4, 3}));
  NodeId Z = B.input(Shape({4, 2}));
  NodeId T = B.transpose(X, {1, 0});     // 6x4 -> folded map
  NodeId TT = B.transpose(T, {1, 0});    // back to 4x6
  NodeId Inner = B.concat({Y, Z}, 1);    // 4x5
  B.markOutput(B.relu(B.concat({TT, Inner}, 1))); // 4x11
  CompiledBlock CB = compileWholeGraph(B.graph());
  ASSERT_EQ(CB.Steps.size(), 1u);
  const DftProgram &P = CB.Steps[0].Program;
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::RouterSplit), 2);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::RouterMerge), 2);
  expectStepBitIdentity(B.graph(), CB, {3, 11, 64, 256});
}

TEST(DftProgramLowering, BroadcastRowOperandLowersToPeriodicLoad) {
  GraphBuilder B(7);
  NodeId X = B.input(Shape({4, 8}));
  NodeId Row = B.input(Shape({8}));
  B.markOutput(B.add(X, Row));
  CompiledBlock CB = compileWholeGraph(B.graph());
  const DftProgram &P = CB.Steps[0].Program;
  // A right-aligned rank-1 broadcast (the GEMM-bias pattern) skips the
  // generic map + gather pair for a period-aligned block copy; the
  // aligned operand stays a zero-copy slot argument.
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::LoadPeriodic), 1);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::MapIndices), 0);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::LoadGather), 0);
  bool SawSlotArg = false;
  for (const DftInstr &I : P.Instrs)
    if (I.K == DftInstr::Kind::Eltwise)
      for (int A = 0; A < I.NumArgs; ++A)
        SawSlotArg |= I.Args[A].IsSlot;
  EXPECT_TRUE(SawSlotArg);
  expectStepBitIdentity(B.graph(), CB, {8, 30, 256});
}

TEST(DftProgramLowering, BroadcastScalarOperandLowersToSplat) {
  GraphBuilder B(7);
  NodeId X = B.input(Shape({4, 8}));
  B.markOutput(B.mul(X, B.scalar(0.5f)));
  CompiledBlock CB = compileWholeGraph(B.graph());
  const DftProgram &P = CB.Steps[0].Program;
  // A scalar operand's chain collapses to one fixed index: a register
  // fill, no index arithmetic at all.
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::LoadSplat), 1);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::MapIndices), 0);
  EXPECT_EQ(countInstrs(P, DftInstr::Kind::LoadGather), 0);
  expectStepBitIdentity(B.graph(), CB, {8, 30, 256});
}

TEST(DftProgramLowering, EmitterRendersTape) {
  GraphBuilder B(8);
  NodeId X = B.input(Shape({2, 3, 4}));
  B.markOutput(B.relu(B.transpose(X, {0, 2, 1})));
  const Graph &G = B.graph();
  CompiledBlock CB = compileWholeGraph(G);
  std::string Src = emitBlockSource(G, CB, "k");
  EXPECT_NE(Src.find("program tape"), std::string::npos);
  EXPECT_NE(Src.find("load.gather"), std::string::npos);
  EXPECT_NE(Src.find("map.chain0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Packed GEMM engine: layout and bit-identity vs the naive kernels
//===----------------------------------------------------------------------===//

TEST(PackedGemm, PanelLayoutAndTailPadding) {
  // B = [2, 5] with NR = 4: two panels, the second 1 column + 3 zeros.
  std::vector<float> B(10);
  for (size_t I = 0; I < B.size(); ++I)
    B[I] = static_cast<float>(I + 1);
  std::vector<float> Packed(static_cast<size_t>(packedPanelElems(2, 5, 4)));
  ASSERT_EQ(Packed.size(), 16u);
  packBPanels(B.data(), 5, 1, 2, 5, 4, Packed.data());
  // Panel 0: rows (1,2,3,4), (6,7,8,9). Panel 1: (5,0,0,0), (10,0,0,0).
  const float Want[] = {1, 2, 3, 4, 6, 7, 8, 9, 5, 0, 0, 0, 10, 0, 0, 0};
  for (size_t I = 0; I < 16; ++I)
    EXPECT_EQ(Packed[I], Want[I]) << "at " << I;
}

TEST(PackedGemm, BitIdenticalToNaiveAcrossShapesAndBlocking) {
  Rng R(23);
  for (auto [M, N, K] : {std::tuple<int64_t, int64_t, int64_t>{1, 37, 19},
                         {5, 8, 64},
                         {33, 130, 47},
                         {64, 64, 64}}) {
    Tensor A(Shape({M, K})), B(Shape({K, N}));
    fillRandom(A, R, -2.0f, 2.0f);
    fillRandom(B, R, -2.0f, 2.0f);
    // Naive reference (matmulRows ordering).
    Tensor Ref(Shape({M, N}));
    for (int64_t I = 0; I < M; ++I)
      for (int64_t J = 0; J < N; ++J) {
        float Acc = 0.0f;
        for (int64_t Kk = 0; Kk < K; ++Kk)
          Acc += A.at(I * K + Kk) * B.at(Kk * N + J);
        Ref.at(I * N + J) = Acc;
      }
    for (int NR : {4, 8, 16, 32})
      for (int MR : {1, 2, 4, 8}) {
        std::vector<float> Packed(
            static_cast<size_t>(packedPanelElems(K, N, NR)));
        packBPanels(B.data(), N, 1, K, N, NR, Packed.data());
        Tensor C(Shape({M, N}));
        gemmPackedRows(A.data(), K, 1, Packed.data(), C.data(), N, 0, M, N,
                       K, MR, NR, nullptr);
        for (int64_t I = 0; I < M * N; ++I)
          ASSERT_EQ(C.at(I), Ref.at(I))
              << "MR=" << MR << " NR=" << NR << " M=" << M << " N=" << N
              << " K=" << K << " at " << I;
      }
  }
}

/// Runs \p Kind twice (packed on/off) over \p Inputs and expects equal
/// outputs element-for-element.
void expectKernelPathIdentity(OpKind Kind, const AttrMap &Attrs,
                              const std::vector<const Tensor *> &Inputs,
                              const Shape &OutShape) {
  Tensor Packed(OutShape), Naive(OutShape);
  KernelConfig On; // defaults: packed enabled
  KernelConfig Off;
  Off.UsePackedGemm = false;
  runRefKernel(Kind, Attrs, Inputs, Packed, On);
  runRefKernel(Kind, Attrs, Inputs, Naive, Off);
  for (int64_t I = 0; I < Packed.numElements(); ++I)
    ASSERT_EQ(Packed.at(I), Naive.at(I)) << opKindName(Kind) << " at " << I;
}

TEST(PackedGemm, MatMulBatchedAndBroadcastAgreeWithNaive) {
  Rng R(29);
  // Batched B (one slice per batch) and broadcast B (one shared slice).
  for (auto Shapes :
       {std::pair<Shape, Shape>{Shape({3, 24, 40}), Shape({3, 40, 32})},
        {Shape({4, 2, 24, 40}), Shape({40, 32})},
        {Shape({2, 2, 16, 32}), Shape({2, 1, 32, 24})}}) {
    Tensor A(Shapes.first), B(Shapes.second);
    fillRandom(A, R, -1.5f, 1.5f);
    fillRandom(B, R, -1.5f, 1.5f);
    // Output shape: broadcast batch dims + [M, N].
    std::vector<const Tensor *> Inputs{&A, &B};
    Shape Out = inferShape(OpKind::MatMul, AttrMap(),
                            {A.shape(), B.shape()});
    expectKernelPathIdentity(OpKind::MatMul, AttrMap(), Inputs, Out);
  }
}

TEST(PackedGemm, GemmAllTransposeAndBiasVariantsAgreeWithNaive) {
  Rng R(31);
  int64_t M = 24, N = 40, K = 32;
  for (int TA : {0, 1})
    for (int TB : {0, 1})
      for (int BiasKind : {-1, 0, 1, 2, 3}) {
        Tensor A(TA ? Shape({K, M}) : Shape({M, K}));
        Tensor B(TB ? Shape({N, K}) : Shape({K, N}));
        fillRandom(A, R, -1.5f, 1.5f);
        fillRandom(B, R, -1.5f, 1.5f);
        AttrMap Attrs;
        Attrs.set("transA", TA);
        Attrs.set("transB", TB);
        std::vector<const Tensor *> Inputs{&A, &B};
        Tensor Bias;
        if (BiasKind >= 0) {
          Shape BiasShape = BiasKind == 0   ? Shape({int64_t(1)})
                            : BiasKind == 1 ? Shape({N})
                            : BiasKind == 2 ? Shape({M, int64_t(1)})
                                            : Shape({M, N});
          Bias = Tensor(BiasShape);
          fillRandom(Bias, R, -1.0f, 1.0f);
          Inputs.push_back(&Bias);
        }
        expectKernelPathIdentity(OpKind::Gemm, Attrs, Inputs,
                                 Shape({M, N}));
      }
}

TEST(PackedGemm, ConvVariantsAgreeWithDirect) {
  Rng R(37);
  struct Case {
    Shape X, W;
    std::vector<int64_t> Strides, Pads, Dilations;
    int64_t Group;
  };
  const Case Cases[] = {
      // Plain 3x3, padded.
      {Shape({1, 8, 14, 14}), Shape({16, 8, 3, 3}), {1, 1}, {1, 1}, {1, 1}, 1},
      // Strided, asymmetric spatial size.
      {Shape({2, 6, 19, 13}), Shape({12, 6, 3, 3}), {2, 2}, {1, 1}, {1, 1}, 1},
      // Dilated.
      {Shape({1, 4, 16, 16}), Shape({8, 4, 3, 3}), {1, 1}, {2, 2}, {2, 2}, 1},
      // Grouped (2 groups).
      {Shape({1, 8, 12, 12}), Shape({16, 4, 3, 3}), {1, 1}, {1, 1}, {1, 1}, 2},
      // 1x1 pointwise.
      {Shape({1, 16, 10, 10}), Shape({32, 16, 1, 1}), {1, 1}, {0, 0}, {1, 1}, 1},
      // 3-D conv.
      {Shape({1, 4, 6, 10, 10}), Shape({8, 4, 3, 3, 3}), {1, 1, 1},
       {1, 1, 1}, {1, 1, 1}, 1},
  };
  for (const Case &C : Cases) {
    Tensor X(C.X), W(C.W);
    fillRandom(X, R, -1.5f, 1.5f);
    fillRandom(W, R, -1.5f, 1.5f);
    AttrMap Attrs;
    Attrs.set("strides", C.Strides);
    Attrs.set("pads", C.Pads);
    Attrs.set("dilations", C.Dilations);
    Attrs.set("group", C.Group);
    Tensor Bias(Shape({C.W.dim(0)}));
    fillRandom(Bias, R, -1.0f, 1.0f);
    Shape Out = inferShape(OpKind::Conv, Attrs, {C.X, C.W});
    for (bool WithBias : {false, true}) {
      std::vector<const Tensor *> Inputs{&X, &W};
      if (WithBias)
        Inputs.push_back(&Bias);
      expectKernelPathIdentity(OpKind::Conv, Attrs, Inputs, Out);
    }
  }
}

//===----------------------------------------------------------------------===//
// Prepack lifecycle and engine-path counters
//===----------------------------------------------------------------------===//

/// A small transformer-ish model with constant GEMM/MatMul weights — every
/// Many-to-Many weight should prepack.
Graph constantWeightModel(uint64_t Seed) {
  GraphBuilder B(Seed);
  NodeId X = B.input(Shape({16, 32}));
  NodeId H = B.op(OpKind::Gemm, {X, B.weight(Shape({32, 48}))});
  H = B.relu(H);
  H = B.op(OpKind::MatMul, {H, B.weight(Shape({48, 32}))});
  B.markOutput(H);
  return B.take();
}

TEST(PrepackStore, ConstantWeightsPackOnceAndHitAtRunTime) {
  CompiledModel M =
      cantFail(compileModel(constantWeightModel(11), CompileOptions()));
  EXPECT_EQ(M.Prepack.size(), 2u);
  int StepsWithPrepack = 0;
  for (const CompiledBlock &B : M.Blocks)
    for (const CompiledStep &S : B.Steps)
      StepsWithPrepack += S.PrepackIndex >= 0 ? 1 : 0;
  EXPECT_EQ(StepsWithPrepack, 2);

  ExecutionContext E(M);
  std::vector<Tensor> Inputs = randomInputs(M.G, 5);
  ExecutionStats Stats;
  E.run(Inputs, &Stats);
  EXPECT_EQ(Stats.Engine.PrepackHits, 2);
  EXPECT_EQ(Stats.Engine.PrepackMisses, 0);
  EXPECT_EQ(Stats.Engine.PackedKernelCalls, 2);
  EXPECT_EQ(Stats.Engine.DirectKernelCalls, 0);
  // The relu between the two GEMMs runs as a fused epilogue inside the
  // first GEMM's row loop, not as a standalone program step.
  EXPECT_EQ(Stats.Engine.ProgramSteps, 0);
  EXPECT_EQ(Stats.Engine.GemmEpilogueSteps, 1);
  EXPECT_EQ(Stats.Engine.TreeWalkSteps, 0);
}

TEST(PrepackStore, EpilogueToggleRestoresStandaloneProgramSteps) {
  CompileOptions Opt;
  Opt.Codegen.FuseGemmEpilogue = false;
  CompiledModel M = cantFail(compileModel(constantWeightModel(11), Opt));
  ExecutionContext E(M);
  std::vector<Tensor> Inputs = randomInputs(M.G, 5);
  ExecutionStats Stats;
  E.run(Inputs, &Stats);
  EXPECT_GT(Stats.Engine.ProgramSteps, 0);
  EXPECT_EQ(Stats.Engine.GemmEpilogueSteps, 0);
}

TEST(PrepackStore, DisabledEngineReportsLegacyPaths) {
  CompileOptions Opt;
  Opt.Codegen.UseCompiledPrograms = false;
  Opt.Codegen.FuseGemmEpilogue = false;
  Opt.Codegen.Kernels.UsePackedGemm = false;
  CompiledModel M = cantFail(compileModel(constantWeightModel(11), Opt));
  EXPECT_TRUE(M.Prepack.empty());
  ExecutionContext E(M);
  std::vector<Tensor> Inputs = randomInputs(M.G, 5);
  ExecutionStats Stats;
  E.run(Inputs, &Stats);
  EXPECT_EQ(Stats.Engine.PackedKernelCalls, 0);
  EXPECT_EQ(Stats.Engine.DirectKernelCalls, 2);
  EXPECT_EQ(Stats.Engine.ProgramSteps, 0);
  EXPECT_GT(Stats.Engine.TreeWalkSteps, 0);
}

TEST(PrepackStore, SessionMetricsAccumulateEngineCounters) {
  CompiledModel M =
      cantFail(compileModel(constantWeightModel(11), CompileOptions()));
  InferenceSession Session(std::move(M));
  std::vector<Tensor> Inputs =
      randomInputs(Session.model().G, 5);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Session.run(Inputs).ok());
  SessionMetrics Metrics = Session.metrics();
  EXPECT_EQ(Metrics.RequestsServed, 3u);
  EXPECT_EQ(Metrics.Engine.PrepackHits, 6);
  EXPECT_EQ(Metrics.Engine.PackedKernelCalls, 6);
  EXPECT_EQ(Metrics.Engine.GemmEpilogueSteps, 3);
  EXPECT_EQ(Metrics.Engine.TreeWalkSteps, 0);
}

TEST(PrepackStore, SaveLoadRebuildsPrepackAndExecutesBitIdentically) {
  CompiledModel M =
      cantFail(compileModel(constantWeightModel(13), CompileOptions()));
  std::vector<Tensor> Inputs = randomInputs(M.G, 7);
  ExecutionContext E(M);
  std::vector<Tensor> Before = E.run(Inputs);

  std::string Path = formatString("/tmp/dnnf_prepack_%d.dnnf",
                                  static_cast<int>(::getpid()));
  ASSERT_TRUE(saveModel(M, Path).ok());
  Expected<CompiledModel> Loaded = loadModel(Path);
  ASSERT_TRUE(Loaded.ok());
  std::remove(Path.c_str());
  // Prepack is derived state: rebuilt on load, not persisted.
  EXPECT_EQ(Loaded->Prepack.size(), M.Prepack.size());
  ExecutionContext E2(*Loaded);
  std::vector<Tensor> After = E2.run(Inputs);
  ASSERT_EQ(Before.size(), After.size());
  for (size_t I = 0; I < Before.size(); ++I)
    for (int64_t J = 0; J < Before[I].numElements(); ++J)
      ASSERT_EQ(Before[I].at(J), After[I].at(J));
}

//===----------------------------------------------------------------------===//
// Zoo-wide engine bit-identity
//===----------------------------------------------------------------------===//

TEST(EngineZooSweep, ProgramAndPackedPathsAreBitIdenticalZooWide) {
  // The acceptance gate of the engine overhaul: for every zoo model, the
  // default engine (compiled programs + packed kernels) must produce
  // exactly the bytes the legacy engine (tree-walk + naive loops)
  // produces.
  ExecutionOptions Seq;
  Seq.Mode = ExecutionOptions::Schedule::Sequential;
  for (const ModelZooEntry &Entry : modelZoo()) {
    Graph G = Entry.Build();
    std::vector<Tensor> Inputs = randomInputs(G, 42);

    CompileOptions Legacy;
    Legacy.Codegen.UseCompiledPrograms = false;
    Legacy.Codegen.Kernels.UsePackedGemm = false;
    CompiledModel MLegacy = cantFail(compileModel(Entry.Build(), Legacy));
    ExecutionContext ELegacy(MLegacy, Seq);
    std::vector<Tensor> Want = ELegacy.run(Inputs);

    CompiledModel MDefault = cantFail(compileModel(std::move(G)));
    ExecutionContext EDefault(MDefault, Seq);
    ExecutionStats Stats;
    std::vector<Tensor> Got = EDefault.run(Inputs, &Stats);

    ASSERT_EQ(Want.size(), Got.size()) << Entry.Info.Name;
    for (size_t I = 0; I < Want.size(); ++I)
      for (int64_t J = 0; J < Want[I].numElements(); ++J)
        ASSERT_EQ(Want[I].at(J), Got[I].at(J))
            << Entry.Info.Name << " output " << I << " elem " << J;
    // The default engine must actually be on the new paths.
    EXPECT_GT(Stats.Engine.ProgramSteps, 0) << Entry.Info.Name;
    EXPECT_EQ(Stats.Engine.TreeWalkSteps, 0) << Entry.Info.Name;
  }
}

} // namespace
