//===- tests/test_rewrite_golden.cpp - per-rule before/after goldens -----------===//
//
// Structural golden tests for the graph-rewriting registry (paper Table 4):
// every registered rule gets an explicit before/after graph assertion, not
// just end-to-end numeric equivalence (tests/test_rewrite.cpp covers that).
// Graphs are rendered as canonical output expressions — operator names with
// attribute signatures applied to `inN`/`const[...]` leaves — so the
// assertions are independent of node ids and construction order.
//
// A meta-test pins the covered rule-name set to the registry: adding a rule
// without a golden here is a test failure.
//
//===----------------------------------------------------------------------===//

#include "core/GraphRewriter.h"
#include "graph/GraphBuilder.h"
#include "ops/OpSchema.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

using namespace dnnfusion;

namespace {

//===----------------------------------------------------------------------===//
// Canonical expression rendering
//===----------------------------------------------------------------------===//

/// Renders the value produced by \p Id as a canonical expression: operator
/// names (with attribute signature when present) over `inN` input leaves and
/// `const[value|shape]` constant leaves. Shared subgraphs print in full at
/// every use, which keeps the rendering construction-order independent.
std::string expr(const Graph &G, NodeId Id) {
  const Node &N = G.node(Id);
  if (N.Kind == OpKind::Input) {
    int Index = 0;
    for (int I = 0; I < N.Id; ++I)
      if (!G.node(I).Dead && G.node(I).Kind == OpKind::Input)
        ++Index;
    return formatString("in%d", Index);
  }
  if (N.Kind == OpKind::Constant) {
    if (N.OutShape.numElements() == 1)
      return formatString("const[%g]", static_cast<double>(N.ConstValue.at(0)));
    return "const[" + N.OutShape.toString() + "]";
  }
  std::string Out = opKindName(N.Kind);
  std::string Sig = N.Attrs.signature();
  if (!Sig.empty())
    Out += "{" + Sig + "}";
  std::vector<std::string> Ins;
  for (NodeId In : N.Inputs)
    Ins.push_back(expr(G, In));
  return Out + "(" + joinStrings(Ins, ", ") + ")";
}

/// Canonical rendering of a whole graph: its output expressions in output
/// order.
std::string graphExpr(const Graph &G) {
  std::vector<std::string> Outs;
  for (NodeId Id : G.outputs())
    Outs.push_back(expr(G, Id));
  return joinStrings(Outs, " | ");
}

//===----------------------------------------------------------------------===//
// Golden case table
//===----------------------------------------------------------------------===//

struct GoldenCase {
  /// Registry rule name this case exercises (meta-test checks coverage).
  const char *Rule;
  /// Builds the before-graph.
  std::function<void(GraphBuilder &)> Build;
  /// Expected canonical rendering before/after rewriteGraph.
  const char *Before;
  const char *After;
};

AttrMap reduceAttrs() {
  return AttrMap()
      .set("axes", std::vector<int64_t>{1})
      .set("keepdims", int64_t(1));
}

std::vector<GoldenCase> goldenCases() {
  std::vector<GoldenCase> C;

  // --- Associative ---------------------------------------------------------
  C.push_back({"assoc.recip-mul",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({8, 8})), Bv = B.input(Shape({8, 8}));
                 B.markOutput(B.mul(B.unary(OpKind::Reciprocal, A),
                                    B.unary(OpKind::Reciprocal, B.mul(A, Bv))));
               },
               "Mul(Reciprocal(in0), Reciprocal(Mul(in0, in1)))",
               "Mul(Square(Reciprocal(in0)), Reciprocal(in1))"});
  C.push_back({"assoc.sqrt-pair",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 4})), Bx = B.input(Shape({4, 4})),
                        Cv = B.input(Shape({4, 4}));
                 NodeId S = B.unary(OpKind::Sqrt, Bx);
                 B.markOutput(B.mul(B.mul(A, S), B.mul(S, Cv)));
               },
               "Mul(Mul(in0, Sqrt(in1)), Mul(Sqrt(in1), in2))",
               "Mul(Mul(in0, in1), in2)"});
  C.push_back({"assoc.reducesum-pair",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({8, 8})), Bx = B.input(Shape({8, 8})),
                        Cv = B.input(Shape({8, 8}));
                 NodeId RS = B.op(OpKind::ReduceSum, {Bx}, reduceAttrs());
                 B.markOutput(B.mul(B.mul(A, RS), B.mul(RS, Cv)));
               },
               "Mul(Mul(in0, ReduceSum{axes=[1];keepdims=1}(in1)), "
               "Mul(ReduceSum{axes=[1];keepdims=1}(in1), in2))",
               "Mul(Mul(in0, Square(ReduceSum{axes=[1];keepdims=1}(in1))), "
               "in2)"});
  C.push_back({"assoc.abs-pair",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 4})), Bx = B.input(Shape({4, 4})),
                        Cv = B.input(Shape({4, 4}));
                 B.markOutput(B.mul(B.mul(B.unary(OpKind::Abs, A), Bx),
                                    B.unary(OpKind::Abs, Cv)));
               },
               "Mul(Mul(Abs(in0), in1), Abs(in2))",
               "Mul(Abs(Mul(in0, in2)), in1)"});
  C.push_back({"assoc.exp-mul",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 4})), Bv = B.input(Shape({4, 4}));
                 B.markOutput(
                     B.mul(B.unary(OpKind::Exp, A), B.unary(OpKind::Exp, Bv)));
               },
               "Mul(Exp(in0), Exp(in1))", "Exp(Add(in0, in1))"});
  C.push_back({"assoc.log-add",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 4})), Bv = B.input(Shape({4, 4}));
                 B.markOutput(
                     B.add(B.unary(OpKind::Log, A), B.unary(OpKind::Log, Bv)));
               },
               "Add(Log(in0), Log(in1))", "Log(Mul(in0, in1))"});
  C.push_back({"assoc.log-sub",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 4})), Bv = B.input(Shape({4, 4}));
                 B.markOutput(
                     B.sub(B.unary(OpKind::Log, A), B.unary(OpKind::Log, Bv)));
               },
               "Sub(Log(in0), Log(in1))", "Log(Div(in0, in1))"});
  C.push_back({"assoc.mul-self",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 4}));
                 B.markOutput(B.mul(A, A));
               },
               "Mul(in0, in0)", "Square(in0)"});

  // --- Distributive --------------------------------------------------------
  C.push_back({"dist.factor-common",
               [](GraphBuilder &B) {
                 NodeId X = B.input(Shape({6, 6})), Y = B.input(Shape({6, 6})),
                        Z = B.input(Shape({6, 6}));
                 B.markOutput(B.add(B.mul(X, Y), B.mul(X, Z)));
               },
               "Add(Mul(in0, in1), Mul(in0, in2))",
               "Mul(in0, Add(in1, in2))"});
  C.push_back({"dist.div-common",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({6, 6})), Bv = B.input(Shape({6, 6})),
                        D = B.input(Shape({6, 6}));
                 B.markOutput(B.add(B.div(A, D), B.div(Bv, D)));
               },
               "Add(Div(in0, in2), Div(in1, in2))",
               "Div(Add(in0, in1), in2)"});
  C.push_back({"dist.add-self-mul",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({6, 6})), Bv = B.input(Shape({6, 6}));
                 B.markOutput(B.add(A, B.mul(A, Bv)));
               },
               "Add(in0, Mul(in0, in1))", "Mul(in0, Add(in1, const[1]))"});
  C.push_back({"dist.square-sub",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({6, 6})), Bv = B.input(Shape({6, 6})),
                        Cv = B.input(Shape({6, 6}));
                 NodeId S = B.add(A, Bv);
                 B.markOutput(B.sub(B.unary(OpKind::Square, S), B.mul(S, Cv)));
               },
               "Sub(Square(Add(in0, in1)), Mul(Add(in0, in1), in2))",
               "Mul(Add(in0, in1), Sub(Add(in0, in1), in2))"});

  // --- Commutative: reductions past cheap elementwise ----------------------
  C.push_back({"comm.reducesum-bitshift",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 NodeId Sh = B.op(OpKind::BitShift, {A},
                                  AttrMap()
                                      .set("bits", int64_t(2))
                                      .set("direction", int64_t(0)));
                 B.markOutput(B.op(OpKind::ReduceSum, {Sh}, reduceAttrs()));
               },
               "ReduceSum{axes=[1];keepdims=1}(BitShift{bits=2;direction=0}"
               "(in0))",
               "BitShift{bits=2;direction=0}(ReduceSum{axes=[1];keepdims=1}"
               "(in0))"});
  C.push_back({"comm.reduceprod-exp",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceProd,
                                   {B.unary(OpKind::Exp, A)}, reduceAttrs()));
               },
               "ReduceProd{axes=[1];keepdims=1}(Exp(in0))",
               "Exp(ReduceSum{axes=[1];keepdims=1}(in0))"});
  C.push_back({"comm.reducesum-neg",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceSum, {B.unary(OpKind::Neg, A)},
                                   reduceAttrs()));
               },
               "ReduceSum{axes=[1];keepdims=1}(Neg(in0))",
               "Neg(ReduceSum{axes=[1];keepdims=1}(in0))"});
  C.push_back({"comm.reducemean-neg",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceMean,
                                   {B.unary(OpKind::Neg, A)}, reduceAttrs()));
               },
               "ReduceMean{axes=[1];keepdims=1}(Neg(in0))",
               "Neg(ReduceMean{axes=[1];keepdims=1}(in0))"});
  C.push_back({"comm.reducesum-mul-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceSum,
                                   {B.mul(A, B.scalar(2.0f))}, reduceAttrs()));
               },
               "ReduceSum{axes=[1];keepdims=1}(Mul(in0, const[2]))",
               "Mul(ReduceSum{axes=[1];keepdims=1}(in0), const[2])"});
  C.push_back({"comm.reducesum-div-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceSum,
                                   {B.div(A, B.scalar(2.0f))}, reduceAttrs()));
               },
               "ReduceSum{axes=[1];keepdims=1}(Div(in0, const[2]))",
               "Div(ReduceSum{axes=[1];keepdims=1}(in0), const[2])"});
  C.push_back({"comm.reducemean-mul-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceMean,
                                   {B.mul(A, B.scalar(2.0f))}, reduceAttrs()));
               },
               "ReduceMean{axes=[1];keepdims=1}(Mul(in0, const[2]))",
               "Mul(ReduceMean{axes=[1];keepdims=1}(in0), const[2])"});
  C.push_back({"comm.reducemean-add-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceMean,
                                   {B.add(A, B.scalar(2.0f))}, reduceAttrs()));
               },
               "ReduceMean{axes=[1];keepdims=1}(Add(in0, const[2]))",
               "Add(ReduceMean{axes=[1];keepdims=1}(in0), const[2])"});
  C.push_back({"comm.reducemean-sub-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceMean,
                                   {B.sub(A, B.scalar(2.0f))}, reduceAttrs()));
               },
               "ReduceMean{axes=[1];keepdims=1}(Sub(in0, const[2]))",
               "Sub(ReduceMean{axes=[1];keepdims=1}(in0), const[2])"});
  C.push_back({"comm.reducemax-mul-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceMax,
                                   {B.mul(A, B.scalar(0.5f))}, reduceAttrs()));
               },
               "ReduceMax{axes=[1];keepdims=1}(Mul(in0, const[0.5]))",
               "Mul(ReduceMax{axes=[1];keepdims=1}(in0), const[0.5])"});
  C.push_back({"comm.reducemin-mul-scalar",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({4, 8}));
                 B.markOutput(B.op(OpKind::ReduceMin,
                                   {B.mul(A, B.scalar(0.5f))}, reduceAttrs()));
               },
               "ReduceMin{axes=[1];keepdims=1}(Mul(in0, const[0.5]))",
               "Mul(ReduceMin{axes=[1];keepdims=1}(in0), const[0.5])"});

  // --- Commutative: inverse pairs, unary pairs, idempotence ----------------
  auto Unary2 = [](OpKind Outer, OpKind Inner) {
    return [Outer, Inner](GraphBuilder &B) {
      B.markOutput(B.unary(Outer, B.unary(Inner, B.input(Shape({4, 4})))));
    };
  };
  C.push_back({"comm.log-exp", Unary2(OpKind::Log, OpKind::Exp),
               "Log(Exp(in0))", "in0"});
  C.push_back({"comm.exp-log", Unary2(OpKind::Exp, OpKind::Log),
               "Exp(Log(in0))", "in0"});
  C.push_back({"comm.recip-recip",
               Unary2(OpKind::Reciprocal, OpKind::Reciprocal),
               "Reciprocal(Reciprocal(in0))", "in0"});
  C.push_back({"comm.neg-neg", Unary2(OpKind::Neg, OpKind::Neg),
               "Neg(Neg(in0))", "in0"});
  C.push_back({"comm.square-sqrt", Unary2(OpKind::Square, OpKind::Sqrt),
               "Square(Sqrt(in0))", "in0"});
  C.push_back({"comm.sqrt-square", Unary2(OpKind::Sqrt, OpKind::Square),
               "Sqrt(Square(in0))", "Abs(in0)"});
  C.push_back({"comm.abs-neg", Unary2(OpKind::Abs, OpKind::Neg),
               "Abs(Neg(in0))", "Abs(in0)"});
  C.push_back({"comm.square-neg", Unary2(OpKind::Square, OpKind::Neg),
               "Square(Neg(in0))", "Square(in0)"});
  C.push_back({"comm.square-abs", Unary2(OpKind::Square, OpKind::Abs),
               "Square(Abs(in0))", "Square(in0)"});
  C.push_back({"comm.relu-relu", Unary2(OpKind::Relu, OpKind::Relu),
               "Relu(Relu(in0))", "Relu(in0)"});
  C.push_back({"comm.abs-abs", Unary2(OpKind::Abs, OpKind::Abs),
               "Abs(Abs(in0))", "Abs(in0)"});
  C.push_back({"comm.ceil-ceil", Unary2(OpKind::Ceil, OpKind::Ceil),
               "Ceil(Ceil(in0))", "Ceil(in0)"});
  C.push_back({"comm.floor-floor", Unary2(OpKind::Floor, OpKind::Floor),
               "Floor(Floor(in0))", "Floor(in0)"});
  C.push_back({"comm.round-round", Unary2(OpKind::Round, OpKind::Round),
               "Round(Round(in0))", "Round(in0)"});

  // --- Canonicalization ----------------------------------------------------
  auto PowCase = [](float Expo) {
    return [Expo](GraphBuilder &B) {
      B.markOutput(
          B.binary(OpKind::Pow, B.input(Shape({4})), B.scalar(Expo)));
    };
  };
  C.push_back({"canon.pow-two", PowCase(2.0f), "Pow(in0, const[2])",
               "Square(in0)"});
  C.push_back({"canon.pow-half", PowCase(0.5f), "Pow(in0, const[0.5])",
               "Sqrt(in0)"});
  C.push_back({"canon.pow-one", PowCase(1.0f), "Pow(in0, const[1])", "in0"});
  C.push_back({"canon.pow-neg-one", PowCase(-1.0f), "Pow(in0, const[-1])",
               "Reciprocal(in0)"});
  C.push_back({"canon.mul-one",
               [](GraphBuilder &B) {
                 B.markOutput(B.mul(B.input(Shape({4})), B.scalar(1.0f)));
               },
               "Mul(in0, const[1])", "in0"});
  C.push_back({"canon.add-zero",
               [](GraphBuilder &B) {
                 B.markOutput(B.add(B.input(Shape({4})), B.scalar(0.0f)));
               },
               "Add(in0, const[0])", "in0"});
  C.push_back({"canon.sub-zero",
               [](GraphBuilder &B) {
                 B.markOutput(B.sub(B.input(Shape({4})), B.scalar(0.0f)));
               },
               "Sub(in0, const[0])", "in0"});
  C.push_back({"canon.div-one",
               [](GraphBuilder &B) {
                 B.markOutput(B.div(B.input(Shape({4})), B.scalar(1.0f)));
               },
               "Div(in0, const[1])", "in0"});
  C.push_back({"canon.identity-elim",
               [](GraphBuilder &B) {
                 B.markOutput(B.unary(OpKind::Identity,
                                      B.relu(B.input(Shape({4})))));
               },
               "Identity(Relu(in0))", "Relu(in0)"});
  C.push_back({"canon.transpose-pair",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({2, 3, 4}));
                 B.markOutput(
                     B.relu(B.transpose(B.transpose(A, {1, 0, 2}), {2, 0, 1})));
               },
               "Relu(Transpose{perm=[2, 0, 1]}(Transpose{perm=[1, 0, 2]}"
               "(in0)))",
               "Relu(Transpose{perm=[2, 1, 0]}(in0))"});
  C.push_back({"canon.transpose-identity",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({2, 3, 4}));
                 B.markOutput(B.relu(B.transpose(A, {0, 1, 2})));
               },
               "Relu(Transpose{perm=[0, 1, 2]}(in0))", "Relu(in0)"});
  C.push_back({"canon.reorganize-pair",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({2, 3, 4}));
                 B.markOutput(B.relu(B.reshape(B.reshape(A, {6, 4}), {24})));
               },
               "Relu(Reshape{shape=[24]}(Reshape{shape=[6, 4]}(in0)))",
               "Relu(Reshape{shape=[24]}(in0))"});
  C.push_back({"canon.reorganize-noop",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({2, 3, 4}));
                 B.markOutput(B.relu(B.reshape(A, {2, 3, 4})));
               },
               "Relu(Reshape{shape=[2, 3, 4]}(in0))", "Relu(in0)"});
  C.push_back({"canon.concat-single",
               [](GraphBuilder &B) {
                 NodeId A = B.input(Shape({2, 3}));
                 B.markOutput(B.relu(B.op(OpKind::Concat, {A},
                                          AttrMap().set("axis", int64_t(0)))));
               },
               "Relu(Concat{axis=0}(in0))", "Relu(in0)"});
  C.push_back(
      {"canon.recompose-softmax",
       [](GraphBuilder &B) {
         NodeId X = B.input(Shape({4, 8}));
         AttrMap Last =
             AttrMap().set("axes", std::vector<int64_t>{-1}).set("keepdims",
                                                                 int64_t(1));
         NodeId Max = B.op(OpKind::ReduceMax, {X}, Last);
         NodeId E = B.unary(OpKind::Exp, B.op(OpKind::Sub, {X, Max}));
         NodeId Sum = B.op(OpKind::ReduceSum, {E}, Last);
         B.markOutput(B.op(OpKind::Div, {E, Sum}));
       },
       "Div(Exp(Sub(in0, ReduceMax{axes=[-1];keepdims=1}(in0))), "
       "ReduceSum{axes=[-1];keepdims=1}(Exp(Sub(in0, "
       "ReduceMax{axes=[-1];keepdims=1}(in0)))))",
       "Softmax{axis=-1}(in0)"});

  // --- Folding -------------------------------------------------------------
  C.push_back({"fold.conv-batchnorm",
               [](GraphBuilder &B) {
                 NodeId X = B.input(Shape({1, 3, 8, 8}));
                 B.markOutput(B.relu(B.batchNorm(B.conv(X, 4, {3, 3}))));
               },
               "Relu(BatchNormalization{epsilon=1e-05}(Conv(in0, "
               "const[4x3x3x3], const[4]), const[4], const[4], const[4], "
               "const[4]))",
               "Relu(Conv(in0, const[4x3x3x3], const[4]))"});
  C.push_back({"fold.mul-scalar-conv",
               [](GraphBuilder &B) {
                 NodeId X = B.input(Shape({1, 2, 6, 6}));
                 B.markOutput(B.mul(B.conv(X, 4, {3, 3}), B.scalar(0.5f)));
               },
               "Mul(Conv(in0, const[4x2x3x3], const[4]), const[0.5])",
               "Conv(in0, const[4x2x3x3], const[4])"});

  return C;
}

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

class RewriteGolden : public ::testing::TestWithParam<int> {};

TEST_P(RewriteGolden, BeforeAndAfterMatchGolden) {
  GoldenCase Case = goldenCases()[static_cast<size_t>(GetParam())];
  GraphBuilder B(1);
  Case.Build(B);
  Graph G = B.take();
  EXPECT_EQ(graphExpr(G), Case.Before) << "rule " << Case.Rule;
  rewriteGraph(G);
  G.verify();
  EXPECT_EQ(graphExpr(G), Case.After) << "rule " << Case.Rule;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, RewriteGolden,
    ::testing::Range(0, static_cast<int>(goldenCases().size())),
    [](const ::testing::TestParamInfo<int> &Info) {
      std::string Name =
          goldenCases()[static_cast<size_t>(Info.param)].Rule;
      std::replace(Name.begin(), Name.end(), '.', '_');
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name;
    });

TEST(RewriteGoldenMeta, EveryRegisteredRuleHasAGolden) {
  std::set<std::string> Covered;
  for (const GoldenCase &Case : goldenCases())
    Covered.insert(Case.Rule);
  std::set<std::string> Registered;
  for (const RewriteRule &Rule : allRewriteRules())
    Registered.insert(Rule.name());
  std::vector<std::string> MissingGolden, UnknownRule;
  std::set_difference(Registered.begin(), Registered.end(), Covered.begin(),
                      Covered.end(), std::back_inserter(MissingGolden));
  std::set_difference(Covered.begin(), Covered.end(), Registered.begin(),
                      Registered.end(), std::back_inserter(UnknownRule));
  EXPECT_TRUE(MissingGolden.empty())
      << "rules without a golden case: " << joinStrings(MissingGolden, ", ");
  EXPECT_TRUE(UnknownRule.empty())
      << "golden cases naming unknown rules: "
      << joinStrings(UnknownRule, ", ");
}

/// Rules guarded by value preconditions must not fire when the guard fails:
/// commuting Mul past ReduceMax/ReduceMin is only sound for positive
/// scalars.
TEST(RewriteGoldenNegative, ReduceMaxMulNegativeScalarDoesNotCommute) {
  GraphBuilder B(1);
  NodeId A = B.input(Shape({4, 8}));
  B.markOutput(
      B.op(OpKind::ReduceMax, {B.mul(A, B.scalar(-2.0f))}, reduceAttrs()));
  Graph G = B.take();
  rewriteGraph(G);
  EXPECT_EQ(graphExpr(G),
            "ReduceMax{axes=[1];keepdims=1}(Mul(in0, const[-2]))");
}

TEST(RewriteGoldenNegative, SharedOperandBlocksOneUseRules) {
  // Sqrt consumed by a third user: assoc.sqrt-pair's numUses==2 check must
  // keep the rewrite from firing.
  GraphBuilder B(1);
  NodeId A = B.input(Shape({4, 4})), Bx = B.input(Shape({4, 4})),
         Cv = B.input(Shape({4, 4}));
  NodeId S = B.unary(OpKind::Sqrt, Bx);
  B.markOutput(B.mul(B.mul(A, S), B.mul(S, Cv)));
  B.markOutput(B.relu(S)); // Third use.
  Graph G = B.take();
  rewriteGraph(G);
  EXPECT_EQ(graphExpr(G),
            "Mul(Mul(in0, Sqrt(in1)), Mul(Sqrt(in1), in2)) | Relu(Sqrt(in1))");
}

} // namespace
