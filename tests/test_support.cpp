//===- tests/test_support.cpp - support/ unit tests ----------------------------===//

#include "support/Error.h"
#include "support/KeyValueFile.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>

using namespace dnnfusion;

namespace {

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("empty"), "empty");
  EXPECT_EQ(formatString("%05d", 7), "00007");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(splitString("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(StringUtils, JoinInvertsSplit) {
  std::vector<std::string> Pieces = {"a", "b", "c"};
  EXPECT_EQ(splitString(joinStrings(Pieces, ","), ','), Pieces);
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("a"), "a");
}

TEST(StringUtils, IntListRoundTrip) {
  std::vector<int64_t> Values = {-3, 0, 7, 1ll << 40};
  EXPECT_EQ(parseIntList(intsToString(Values)), Values);
  EXPECT_TRUE(parseIntList("[]").empty());
  EXPECT_EQ(parseIntList("1,2,3"), (std::vector<int64_t>{1, 2, 3}));
}

TEST(Rng, DeterministicForSeed) {
  Rng A(7), B(7), C(8);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(Rng, FloatInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    float V = R.nextFloat();
    EXPECT_GE(V, 0.0f);
    EXPECT_LT(V, 1.0f);
  }
}

TEST(Rng, RangeInclusive) {
  Rng R(5);
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    int64_t V = R.nextInRange(2, 5);
    EXPECT_GE(V, 2);
    EXPECT_LE(V, 5);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u); // All four values appear.
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> Hits(100000);
  parallelFor(100000, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      ++Hits[static_cast<size_t>(I)];
  });
  for (const auto &H : Hits)
    ASSERT_EQ(H.load(), 1);
}

TEST(ThreadPool, SmallCountsRunInline) {
  int Calls = 0;
  parallelFor(10, [&](int64_t Begin, int64_t End) {
    ++Calls;
    EXPECT_EQ(Begin, 0);
    EXPECT_EQ(End, 10);
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoops) {
  bool Called = false;
  parallelFor(0, [&](int64_t, int64_t) { Called = true; });
  parallelFor(-5, [&](int64_t, int64_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("long-name"), std::string::npos);
  // Header and separator and two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
}

TEST(KeyValueFile, RoundTrip) {
  std::string Path = "/tmp/dnnf_kv_test.txt";
  std::map<std::string, std::string> In = {{"a", "1"}, {"b", "x=y? no"},
                                           {"key with space", "v"}};
  // '=' in values survives (only the first '=' splits).
  In["b"] = "x+y";
  ASSERT_TRUE(storeKeyValueFile(Path, In));
  std::map<std::string, std::string> Out;
  ASSERT_TRUE(loadKeyValueFile(Path, Out));
  EXPECT_EQ(In, Out);
  std::remove(Path.c_str());
}

TEST(KeyValueFile, MissingFileReturnsFalse) {
  std::map<std::string, std::string> Out;
  EXPECT_FALSE(loadKeyValueFile("/tmp/does_not_exist_dnnf.txt", Out));
  EXPECT_TRUE(Out.empty());
}

TEST(Timer, Monotonic) {
  WallTimer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  EXPECT_GE(A, 0.0);
}

TEST(ErrorDeath, CheckMacroAborts) {
  EXPECT_DEATH(DNNF_CHECK(false, "boom %d", 42), "boom 42");
}

} // namespace
