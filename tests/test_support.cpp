//===- tests/test_support.cpp - support/ unit tests ----------------------------===//

#include "support/Error.h"
#include "support/KeyValueFile.h"
#include "support/Rng.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

using namespace dnnfusion;

namespace {

/// Per-process temp path so concurrent runs of this binary (e.g. parallel
/// CI jobs on one machine) cannot corrupt each other's fixtures.
std::string tempPath(const char *Name) {
  return formatString("/tmp/dnnf_%d_%s", static_cast<int>(getpid()), Name);
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("empty"), "empty");
  EXPECT_EQ(formatString("%05d", 7), "00007");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(splitString("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(StringUtils, JoinInvertsSplit) {
  std::vector<std::string> Pieces = {"a", "b", "c"};
  EXPECT_EQ(splitString(joinStrings(Pieces, ","), ','), Pieces);
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("a"), "a");
}

TEST(StringUtils, IntListRoundTrip) {
  std::vector<int64_t> Values = {-3, 0, 7, 1ll << 40};
  EXPECT_EQ(parseIntList(intsToString(Values)), Values);
  EXPECT_TRUE(parseIntList("[]").empty());
  EXPECT_EQ(parseIntList("1,2,3"), (std::vector<int64_t>{1, 2, 3}));
}

TEST(Rng, DeterministicForSeed) {
  Rng A(7), B(7), C(8);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(Rng, FloatInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    float V = R.nextFloat();
    EXPECT_GE(V, 0.0f);
    EXPECT_LT(V, 1.0f);
  }
}

TEST(Rng, RangeInclusive) {
  Rng R(5);
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    int64_t V = R.nextInRange(2, 5);
    EXPECT_GE(V, 2);
    EXPECT_LE(V, 5);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u); // All four values appear.
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> Hits(100000);
  parallelFor(100000, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      ++Hits[static_cast<size_t>(I)];
  });
  for (const auto &H : Hits)
    ASSERT_EQ(H.load(), 1);
}

TEST(ThreadPool, SmallCountsRunInline) {
  int Calls = 0;
  parallelFor(10, [&](int64_t Begin, int64_t End) {
    ++Calls;
    EXPECT_EQ(Begin, 0);
    EXPECT_EQ(End, 10);
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoops) {
  bool Called = false;
  parallelFor(0, [&](int64_t, int64_t) { Called = true; });
  parallelFor(-5, [&](int64_t, int64_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("long-name"), std::string::npos);
  // Header and separator and two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
}

TEST(KeyValueFile, RoundTrip) {
  std::string Path = tempPath("kv_test.txt");
  std::map<std::string, std::string> In = {{"a", "1"}, {"b", "x=y? no"},
                                           {"key with space", "v"}};
  // '=' in values survives (only the first '=' splits).
  In["b"] = "x+y";
  ASSERT_TRUE(storeKeyValueFile(Path, In));
  std::map<std::string, std::string> Out;
  ASSERT_TRUE(loadKeyValueFile(Path, Out));
  EXPECT_EQ(In, Out);
  std::remove(Path.c_str());
}

TEST(KeyValueFile, MissingFileReturnsFalse) {
  std::map<std::string, std::string> Out;
  EXPECT_FALSE(loadKeyValueFile("/tmp/does_not_exist_dnnf.txt", Out));
  EXPECT_TRUE(Out.empty());
}

TEST(Timer, Monotonic) {
  WallTimer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  EXPECT_GE(A, 0.0);
}

TEST(ErrorDeath, CheckMacroAborts) {
  EXPECT_DEATH(DNNF_CHECK(false, "boom %d", 42), "boom 42");
}

//===----------------------------------------------------------------------===//
// StringUtils: edge cases
//===----------------------------------------------------------------------===//

TEST(StringUtils, FormatStringLongerThanAnyInternalBuffer) {
  std::string Big(10000, 'x');
  std::string Out = formatString("<%s>", Big.c_str());
  EXPECT_EQ(Out.size(), Big.size() + 2);
  EXPECT_EQ(Out.front(), '<');
  EXPECT_EQ(Out.back(), '>');
  EXPECT_EQ(Out.substr(1, Big.size()), Big);
}

TEST(StringUtils, SplitOnAbsentSeparator) {
  EXPECT_EQ(splitString("abc", 'x'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(splitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtils, JoinEdgeCases) {
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"only"}, ", "), "only");
  EXPECT_EQ(joinStrings({"a", "", "c"}, "-"), "a--c");
}

TEST(StringUtils, TrimHandlesCarriageReturns) {
  EXPECT_EQ(trimString("\r\n a=b \r\n"), "a=b");
  EXPECT_EQ(trimString("no-trim"), "no-trim");
  EXPECT_EQ(trimString(""), "");
}

TEST(StringUtils, ParseIntListToleratesWhitespaceAndBrackets) {
  EXPECT_EQ(parseIntList(" [ 1 , -2 , 3 ] "),
            (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(parseIntList("7"), (std::vector<int64_t>{7}));
  EXPECT_TRUE(parseIntList("   ").empty());
}

TEST(StringUtilsDeath, ParseIntListRejectsMalformedInput) {
  EXPECT_DEATH(parseIntList("[1, two, 3]"), "malformed integer");
  EXPECT_DEATH(parseIntList("1,,2"), "empty element");
}

TEST(StringUtils, IntsToStringFormatsLikeSignatures) {
  EXPECT_EQ(intsToString({}), "[]");
  EXPECT_EQ(intsToString({5}), "[5]");
  EXPECT_EQ(intsToString({1, 2, 3}), "[1, 2, 3]");
}

//===----------------------------------------------------------------------===//
// ThreadPool: the class itself (the wrapper is covered above)
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ExplicitSizeIsHonored) {
  ThreadPool One(1), Four(4);
  EXPECT_EQ(One.numThreads(), 1u);
  EXPECT_EQ(Four.numThreads(), 4u);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  std::thread::id Seen;
  Pool.parallelFor(1 << 20, [&](int64_t, int64_t) {
    Seen = std::this_thread::get_id();
  });
  EXPECT_EQ(Seen, Caller);
}

TEST(ThreadPool, SliceBoundariesAreDeterministic) {
  // Slice boundaries must depend only on the trip count and pool size —
  // never on scheduling — so instrumentation counters are reproducible.
  ThreadPool Pool(4);
  auto Collect = [&](int64_t Count) {
    std::mutex M;
    std::vector<std::pair<int64_t, int64_t>> Slices;
    Pool.parallelFor(Count, [&](int64_t Begin, int64_t End) {
      std::lock_guard<std::mutex> Lock(M);
      Slices.emplace_back(Begin, End);
    });
    std::sort(Slices.begin(), Slices.end());
    return Slices;
  };
  int64_t Count = 100000;
  auto A = Collect(Count), B = Collect(Count);
  EXPECT_EQ(A, B);
  // Slices tile [0, Count) exactly.
  int64_t Expected = 0;
  for (const auto &[Begin, End] : A) {
    EXPECT_EQ(Begin, Expected);
    EXPECT_LT(Begin, End);
    Expected = End;
  }
  EXPECT_EQ(Expected, Count);
  EXPECT_GT(A.size(), 1u);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool Pool(3);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<int64_t> Sum{0};
    Pool.parallelFor(20000, [&](int64_t Begin, int64_t End) {
      int64_t Local = 0;
      for (int64_t I = Begin; I < End; ++I)
        Local += I;
      Sum += Local;
    });
    EXPECT_EQ(Sum.load(), int64_t(20000) * 19999 / 2);
  }
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().numThreads(), 1u);
  EXPECT_LE(ThreadPool::global().numThreads(), 8u);
}

TEST(ThreadPool, ForEachVisitsEveryIndexOnceWithValidLanes) {
  ThreadPool Pool(4);
  const int64_t Count = 64;
  std::vector<std::atomic<int>> Visits(Count);
  for (auto &V : Visits)
    V = 0;
  std::atomic<bool> LaneOutOfRange{false};
  Pool.forEach(Count, [&](int64_t I, unsigned Lane) {
    ++Visits[static_cast<size_t>(I)];
    if (Lane >= Pool.numLanes())
      LaneOutOfRange = true;
  });
  for (int64_t I = 0; I < Count; ++I)
    EXPECT_EQ(Visits[static_cast<size_t>(I)].load(), 1) << "index " << I;
  EXPECT_FALSE(LaneOutOfRange.load());
}

TEST(ThreadPool, ParallelForInsideWorkerRunsInlineWithoutDeadlock) {
  // The wavefront dispatcher runs fusion blocks as forEach tasks; the
  // fused kernels inside then call parallelFor on the same pool. That
  // nested call must execute inline on the worker — enqueueing and
  // blocking would deadlock a fully busy pool. Regression gate for the
  // reentrancy guarantee.
  ThreadPool Pool(2);
  const int64_t Outer = 2, Inner = 1 << 15; // Inner > 2 * MinPerSlice.
  std::vector<std::atomic<int64_t>> Sums(Outer);
  for (auto &S : Sums)
    S = 0;
  std::mutex RendezvousMutex;
  std::condition_variable RendezvousCv;
  int Arrived = 0;
  std::atomic<int> WorkerDispatches{0};
  Pool.forEach(Outer, [&](int64_t I, unsigned) {
    {
      // Rendezvous: both tasks must be in flight at once, so at least one
      // runs on a worker thread (the participating master can hold only
      // one) and the inline path below is deterministically exercised.
      std::unique_lock<std::mutex> Lock(RendezvousMutex);
      ++Arrived;
      RendezvousCv.notify_all();
      RendezvousCv.wait(Lock, [&] { return Arrived == Outer; });
    }
    bool OnWorker = Pool.onWorkerThread();
    std::thread::id Caller = std::this_thread::get_id();
    Pool.parallelFor(Inner, [&](int64_t Begin, int64_t End) {
      if (OnWorker) {
        // Inline on the worker: same thread, one slice covering the whole
        // range. (On the master a nested parallelFor may dispatch
        // normally, which is deadlock-free.)
        EXPECT_EQ(std::this_thread::get_id(), Caller);
        EXPECT_EQ(Begin, 0);
        EXPECT_EQ(End, Inner);
      }
      int64_t Local = 0;
      for (int64_t J = Begin; J < End; ++J)
        Local += J;
      Sums[static_cast<size_t>(I)] += Local;
    });
    if (OnWorker)
      ++WorkerDispatches;
  });
  EXPECT_GE(WorkerDispatches.load(), 1);
  for (int64_t I = 0; I < Outer; ++I)
    EXPECT_EQ(Sums[static_cast<size_t>(I)].load(), Inner * (Inner - 1) / 2);
}

TEST(ThreadPool, ForEachInsideWorkerRunsInline) {
  ThreadPool Pool(2);
  std::atomic<int> Total{0};
  Pool.forEach(4, [&](int64_t, unsigned OuterLane) {
    Pool.forEach(4, [&](int64_t, unsigned InnerLane) {
      // Nested dispatch degrades to an inline loop on the same lane.
      EXPECT_EQ(InnerLane, OuterLane);
      ++Total;
    });
  });
  EXPECT_EQ(Total.load(), 16);
}

TEST(ThreadPool, LaneIdentification) {
  ThreadPool Pool(3);
  EXPECT_FALSE(Pool.onWorkerThread());
  EXPECT_EQ(Pool.currentLane(), 0u);
  EXPECT_EQ(Pool.numLanes(), 4u);
  // Worker lanes are 1..numThreads; lanes of another pool do not leak.
  ThreadPool Other(2);
  std::mutex M;
  std::vector<unsigned> WorkerLanes;
  Pool.forEach(16, [&](int64_t, unsigned Lane) {
    if (Pool.onWorkerThread()) {
      EXPECT_FALSE(Other.onWorkerThread());
      EXPECT_EQ(Other.currentLane(), 0u);
      EXPECT_GE(Lane, 1u);
      EXPECT_LE(Lane, Pool.numThreads());
      std::lock_guard<std::mutex> Lock(M);
      WorkerLanes.push_back(Lane);
    } else {
      EXPECT_EQ(Lane, 0u);
    }
  });
}

TEST(ThreadPool, ConcurrentMastersEachCompleteTheirOwnGroup) {
  // Several independent threads sharing one pool (the InferenceSession
  // pattern): every parallelFor/forEach call must wait on exactly its own
  // task group and observe its own full iteration space.
  ThreadPool Pool(4);
  const int Masters = 4;
  std::vector<std::thread> Threads;
  std::vector<int64_t> Results(Masters, 0);
  for (int T = 0; T < Masters; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round < 20; ++Round) {
        std::atomic<int64_t> Sum{0};
        const int64_t Count = 10000 + T * 1000;
        Pool.parallelFor(Count, [&](int64_t Begin, int64_t End) {
          int64_t Local = 0;
          for (int64_t I = Begin; I < End; ++I)
            Local += I;
          Sum += Local;
        });
        Results[static_cast<size_t>(T)] = Sum.load();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T < Masters; ++T) {
    int64_t Count = 10000 + T * 1000;
    EXPECT_EQ(Results[static_cast<size_t>(T)], Count * (Count - 1) / 2);
  }
}

//===----------------------------------------------------------------------===//
// TablePrinter: exact rendering
//===----------------------------------------------------------------------===//

TEST(TablePrinter, ExactRendering) {
  TablePrinter T({"op", "ms"});
  T.addRow({"Conv", "1.5"});
  T.addRow({"Add", "10.25"});
  // Columns pad to the widest cell plus two spaces; the separator spans the
  // full width; the last column is not padded.
  EXPECT_EQ(T.render(), "op    ms\n"
                        "-----------\n"
                        "Conv  1.5\n"
                        "Add   10.25\n");
}

TEST(TablePrinter, HeaderOnlyTable) {
  TablePrinter T({"a", "bb"});
  EXPECT_EQ(T.render(), "a  bb\n-----\n");
}

TEST(TablePrinter, SingleColumnHasNoPadding) {
  TablePrinter T({"col"});
  T.addRow({"a-very-long-cell"});
  EXPECT_EQ(T.render(), "col\n----------------\na-very-long-cell\n");
}

TEST(TablePrinterDeath, MismatchedRowArityAborts) {
  TablePrinter T({"a", "b"});
  EXPECT_DEATH(T.addRow({"only-one"}), "row arity");
}

//===----------------------------------------------------------------------===//
// KeyValueFile: formats and failure modes
//===----------------------------------------------------------------------===//

TEST(KeyValueFile, SkipsCommentsAndBlankLines) {
  std::string Path = tempPath("kv_comments.txt");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("# a comment\n\nkey=value\n   \n# another\nk2=v2\n", F);
  std::fclose(F);
  std::map<std::string, std::string> Out;
  ASSERT_TRUE(loadKeyValueFile(Path, Out));
  EXPECT_EQ(Out, (std::map<std::string, std::string>{{"key", "value"},
                                                     {"k2", "v2"}}));
  std::remove(Path.c_str());
}

TEST(KeyValueFile, OnlyFirstEqualsSplits) {
  std::string Path = tempPath("kv_equals.txt");
  std::map<std::string, std::string> In = {{"expr", "a=b=c"}};
  ASSERT_TRUE(storeKeyValueFile(Path, In));
  std::map<std::string, std::string> Out;
  ASSERT_TRUE(loadKeyValueFile(Path, Out));
  EXPECT_EQ(Out["expr"], "a=b=c");
  std::remove(Path.c_str());
}

TEST(KeyValueFile, StoreWritesSortedKeys) {
  std::string Path = tempPath("kv_sorted.txt");
  ASSERT_TRUE(storeKeyValueFile(Path, {{"zeta", "1"}, {"alpha", "2"}}));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  char Buffer[256] = {0};
  size_t Got = std::fread(Buffer, 1, sizeof(Buffer) - 1, F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buffer, Got), "alpha=2\nzeta=1\n");
  std::remove(Path.c_str());
}

TEST(KeyValueFile, StoreOverwritesExistingFile) {
  std::string Path = tempPath("kv_overwrite.txt");
  ASSERT_TRUE(storeKeyValueFile(Path, {{"old", "1"}, {"stale", "2"}}));
  ASSERT_TRUE(storeKeyValueFile(Path, {{"fresh", "3"}}));
  std::map<std::string, std::string> Out;
  ASSERT_TRUE(loadKeyValueFile(Path, Out));
  EXPECT_EQ(Out, (std::map<std::string, std::string>{{"fresh", "3"}}));
  std::remove(Path.c_str());
}

TEST(KeyValueFile, StoreToUnwritablePathReturnsFalse) {
  EXPECT_FALSE(
      storeKeyValueFile("/nonexistent-dir/dnnf.txt", {{"a", "1"}}));
}

TEST(KeyValueFileDeath, MalformedLineAborts) {
  std::string Path = tempPath("kv_malformed.txt");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("no-equals-sign-here\n", F);
  std::fclose(F);
  std::map<std::string, std::string> Out;
  EXPECT_DEATH(loadKeyValueFile(Path, Out), "malformed line");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Status / Expected: the recoverable error model
//===----------------------------------------------------------------------===//

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_TRUE(S.message().empty());
  EXPECT_EQ(S.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::InvalidGraph, "bad wiring");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidGraph);
  EXPECT_EQ(S.message(), "bad wiring");
  EXPECT_EQ(S.toString(), "invalid_graph: bad wiring");
}

TEST(Status, ErrorfFormats) {
  Status S = Status::errorf(ErrorCode::NotFound, "input '%s' (%d of %d)",
                            "image", 1, 3);
  EXPECT_EQ(S.message(), "input 'image' (1 of 3)");
}

TEST(Status, EveryErrorCodeHasAName) {
  for (ErrorCode C :
       {ErrorCode::Ok, ErrorCode::InvalidArgument, ErrorCode::InvalidGraph,
        ErrorCode::NotFound, ErrorCode::FailedPrecondition,
        ErrorCode::DataLoss, ErrorCode::Internal})
    EXPECT_STRNE(errorCodeName(C), "?");
}

TEST(Expected, HoldsValue) {
  Expected<int> E = 42;
  ASSERT_TRUE(E.ok());
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.value(), 42);
  EXPECT_EQ(*E, 42);
  EXPECT_TRUE(E.status().ok());
}

TEST(Expected, HoldsError) {
  Expected<int> E = Status::error(ErrorCode::InvalidArgument, "nope");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(E.status().message(), "nope");
}

TEST(Expected, TakeValueMovesOut) {
  Expected<std::vector<int>> E = std::vector<int>{1, 2, 3};
  std::vector<int> V = E.takeValue();
  EXPECT_EQ(V, (std::vector<int>{1, 2, 3}));
}

TEST(Expected, ArrowOperatorReachesMembers) {
  Expected<std::string> E = std::string("abc");
  EXPECT_EQ(E->size(), 3u);
}

TEST(Expected, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(7)), 7);
}

TEST(ExpectedDeath, ValueOnErrorAborts) {
  Expected<int> E = Status::error(ErrorCode::Internal, "boom");
  EXPECT_DEATH(E.value(), "boom");
}

TEST(ExpectedDeath, CantFailOnErrorAborts) {
  EXPECT_DEATH(cantFail(Expected<int>(
                   Status::error(ErrorCode::Internal, "kaboom"))),
               "kaboom");
}

TEST(ExpectedDeath, ErrorExpectedFromOkStatusAborts) {
  Status Ok;
  EXPECT_DEATH(Expected<int>{Ok}, "without a value");
}

TEST(ScopedFatalErrorTrap, ConvertsFatalErrorsToExceptionsInScope) {
  EXPECT_FALSE(ScopedFatalErrorTrap::active());
  bool Caught = false;
  try {
    ScopedFatalErrorTrap Trap;
    EXPECT_TRUE(ScopedFatalErrorTrap::active());
    DNNF_CHECK(false, "trapped %d", 7);
  } catch (const detail::TrappedFatalError &E) {
    Caught = true;
    EXPECT_NE(E.Message.find("trapped 7"), std::string::npos) << E.Message;
  }
  EXPECT_TRUE(Caught);
  EXPECT_FALSE(ScopedFatalErrorTrap::active());
}

TEST(ScopedFatalErrorTrapDeath, OutsideScopeStillAborts) {
  {
    ScopedFatalErrorTrap Trap;
  }
  EXPECT_DEATH(reportFatalError("still fatal"), "still fatal");
}

} // namespace
