//===- tests/test_pipeline_smoke.cpp - End-to-end pipeline smoke tests ---------===//

#include "TestUtils.h"

#include "graph/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

TEST(PipelineSmoke, ElementwiseChain) {
  GraphBuilder B(1);
  NodeId X = B.input(Shape({4, 16}));
  NodeId Y = B.relu(B.add(X, B.weight(Shape({4, 16}))));
  NodeId Z = B.mul(B.sigmoid(Y), Y);
  B.markOutput(Z);
  expectMatchesReferenceUnderMatrix(B.graph(), 42);
}

TEST(PipelineSmoke, ConvBnReluChain) {
  GraphBuilder B(2);
  NodeId X = B.input(Shape({1, 4, 10, 10}));
  NodeId C1 = B.conv(X, 8, {3, 3}, {1, 1}, {1, 1});
  NodeId Y = B.relu(B.batchNorm(C1));
  NodeId C2 = B.conv(Y, 8, {3, 3}, {2, 2}, {1, 1});
  NodeId Z = B.relu(C2);
  B.markOutput(Z);
  expectMatchesReferenceUnderMatrix(B.graph(), 7);
}

TEST(PipelineSmoke, TransposeReshapeFolding) {
  GraphBuilder B(3);
  NodeId X = B.input(Shape({2, 3, 4, 5}));
  NodeId T = B.transpose(X, {0, 2, 1, 3});
  NodeId R = B.reshape(T, {2, 4, 15});
  NodeId Y = B.relu(R);
  B.markOutput(Y);
  expectMatchesReferenceUnderMatrix(B.graph(), 11);
}

TEST(PipelineSmoke, AttentionLikeBlock) {
  GraphBuilder B(4);
  NodeId X = B.input(Shape({2, 8, 16}));
  NodeId Q = B.linear(X, 16);
  NodeId K = B.linear(X, 16);
  NodeId V = B.linear(X, 16);
  NodeId Kt = B.transpose(K, {0, 2, 1});
  NodeId Scores = B.op(OpKind::MatMul, {Q, Kt});
  NodeId Scaled = B.mul(Scores, B.scalar(0.25f));
  NodeId Probs = B.softmax(Scaled, -1);
  NodeId Ctx = B.op(OpKind::MatMul, {Probs, V});
  NodeId Out = B.layerNormDecomposed(B.add(Ctx, X), 16);
  B.markOutput(Out);
  expectMatchesReferenceUnderMatrix(B.graph(), 13);
}

TEST(PipelineSmoke, ConcatAndSlice) {
  GraphBuilder B(5);
  NodeId X = B.input(Shape({2, 4, 6}));
  NodeId Y = B.input(Shape({2, 2, 6}));
  NodeId C = B.concat({B.relu(X), B.sigmoid(Y)}, 1);
  NodeId S = B.op(OpKind::Slice, {C},
                  AttrMap()
                      .set("starts", std::vector<int64_t>{1})
                      .set("ends", std::vector<int64_t>{5})
                      .set("axes", std::vector<int64_t>{1}));
  B.markOutput(B.tanhOp(S));
  expectMatchesReferenceUnderMatrix(B.graph(), 17);
}

TEST(PipelineSmoke, RewriteChangesGraphButNotResult) {
  // Recip(A) * Recip(A*B) triggers the flagship associative rule.
  GraphBuilder B(6);
  NodeId A = B.input(Shape({8, 8}));
  NodeId Bv = B.input(Shape({8, 8}));
  NodeId R1 = B.unary(OpKind::Reciprocal, A);
  NodeId M = B.mul(A, Bv);
  NodeId R2 = B.unary(OpKind::Reciprocal, M);
  NodeId Out = B.mul(R1, R2);
  B.markOutput(Out);
  expectMatchesReferenceUnderMatrix(B.graph(), 19);
}

} // namespace
