//===- tests/test_rewrite.cpp - graph rewriting tests -----------------------------===//

#include "TestUtils.h"

#include "core/GraphRewriter.h"
#include "graph/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

/// Runs rewriting and asserts outputs match the unrewritten graph.
RewriteStats rewriteAndCheckSemantics(Graph &G, uint64_t Seed,
                                      float RelTol = 2e-3f) {
  std::vector<Tensor> Inputs = randomInputs(G, Seed);
  std::vector<Tensor> Before = runReference(G, Inputs);
  RewriteStats Stats = rewriteGraph(G);
  std::vector<Tensor> After = runReference(G, Inputs);
  EXPECT_EQ(Before.size(), After.size());
  for (size_t I = 0; I < Before.size(); ++I)
    EXPECT_TRUE(allClose(After[I], Before[I], RelTol, RelTol))
        << "rewriting changed output " << I << " (max diff "
        << maxAbsDiff(After[I], Before[I]) << ")";
  return Stats;
}

TEST(RewriteRegistry, HasThePaperFamilies) {
  EXPECT_GE(countRules(RuleCategory::Associative), 6);
  EXPECT_GE(countRules(RuleCategory::Distributive), 4);
  EXPECT_GE(countRules(RuleCategory::Commutative), 15);
  EXPECT_GE(countRules(RuleCategory::Canonicalization), 10);
  EXPECT_GE(countRules(RuleCategory::Folding), 2);
  EXPECT_GE(static_cast<int>(allRewriteRules().size()), 45);
}

//===----------------------------------------------------------------------===//
// Table 4 flagship rules
//===----------------------------------------------------------------------===//

TEST(RewriteTable4, RecipMulAssociative) {
  // Recip(A) ⊙ Recip(A ⊙ B) -> Square(Recip(A)) ⊙ Recip(B).
  GraphBuilder B(1);
  NodeId A = B.input(Shape({8, 8})), Bv = B.input(Shape({8, 8}));
  NodeId Out = B.mul(B.unary(OpKind::Reciprocal, A),
                     B.unary(OpKind::Reciprocal, B.mul(A, Bv)));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats S = rewriteAndCheckSemantics(G, 11);
  EXPECT_GE(S.PerCategory[static_cast<int>(RuleCategory::Associative)], 1);
  int Squares = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id)
    Squares += !G.node(Id).Dead && G.node(Id).Kind == OpKind::Square;
  EXPECT_EQ(Squares, 1);
}

TEST(RewriteTable4, SqrtPairEliminatesSqrt) {
  // (A ⊙ √B) ⊙ (√B ⊙ C) -> (A ⊙ B) ⊙ C.
  GraphBuilder B(2);
  NodeId A = B.input(Shape({4, 4})), Bx = B.input(Shape({4, 4})),
         C = B.input(Shape({4, 4}));
  NodeId S = B.unary(OpKind::Sqrt, Bx);
  NodeId Out = B.mul(B.mul(A, S), B.mul(S, C));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats Stats = rewriteAndCheckSemantics(G, 13);
  EXPECT_LT(Stats.FlopsAfter, Stats.FlopsBefore);
  for (int Id = 0; Id < G.numNodes(); ++Id)
    EXPECT_FALSE(!G.node(Id).Dead && G.node(Id).Kind == OpKind::Sqrt);
}

TEST(RewriteTable4, AbsPairCommutesThenAssociates) {
  // Abs(A) ⊙ B ⊙ Abs(C) -> Abs(A ⊙ C) ⊙ B (one Abs removed).
  GraphBuilder B(3);
  NodeId A = B.input(Shape({4, 4})), Bx = B.input(Shape({4, 4})),
         C = B.input(Shape({4, 4}));
  NodeId Out = B.mul(B.mul(B.unary(OpKind::Abs, A), Bx),
                     B.unary(OpKind::Abs, C));
  B.markOutput(Out);
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 17);
  int AbsCount = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id)
    AbsCount += !G.node(Id).Dead && G.node(Id).Kind == OpKind::Abs;
  EXPECT_EQ(AbsCount, 1);
}

TEST(RewriteTable4, ReduceSumPairSquares) {
  // (A ⊙ RS(B)) ⊙ (RS(B) ⊙ C) -> A ⊙ Square(RS(B)) ⊙ C.
  GraphBuilder B(4);
  NodeId A = B.input(Shape({8, 8})), Bx = B.input(Shape({8, 8})),
         C = B.input(Shape({8, 8}));
  NodeId RS = B.op(OpKind::ReduceSum, {Bx},
                   AttrMap()
                       .set("axes", std::vector<int64_t>{1})
                       .set("keepdims", int64_t(1)));
  NodeId Out = B.mul(B.mul(A, RS), B.mul(RS, C));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats S = rewriteAndCheckSemantics(G, 19, 1e-2f);
  EXPECT_LE(S.FlopsAfter, S.FlopsBefore);
}

TEST(RewriteTable4, DistributiveFactorsCommonTerm) {
  // A ⊙ C + B ⊙ C -> (A + B) ⊙ C.
  GraphBuilder B(5);
  NodeId A = B.input(Shape({6, 6})), Bx = B.input(Shape({6, 6})),
         C = B.input(Shape({6, 6}));
  NodeId Out = B.add(B.mul(A, C), B.mul(Bx, C));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats S = rewriteAndCheckSemantics(G, 23);
  EXPECT_LT(S.FlopsAfter, S.FlopsBefore);
  int Muls = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id)
    Muls += !G.node(Id).Dead && G.node(Id).Kind == OpKind::Mul;
  EXPECT_EQ(Muls, 1);
}

TEST(RewriteTable4, AddSelfMulFactorsA) {
  // A + A ⊙ B -> A ⊙ (B + 1).
  GraphBuilder B(6);
  NodeId A = B.input(Shape({6, 6})), Bx = B.input(Shape({6, 6}));
  NodeId Out = B.add(A, B.mul(A, Bx));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats S = rewriteAndCheckSemantics(G, 29);
  EXPECT_GE(S.PerCategory[static_cast<int>(RuleCategory::Distributive)], 1);
}

TEST(RewriteTable4, SquareSubFactorsSharedSum) {
  // Square(S) - S ⊙ C -> S ⊙ (S - C), S = A + B.
  GraphBuilder B(7);
  NodeId A = B.input(Shape({6, 6})), Bx = B.input(Shape({6, 6})),
         C = B.input(Shape({6, 6}));
  NodeId S = B.add(A, Bx);
  NodeId Out = B.sub(B.unary(OpKind::Square, S), B.mul(S, C));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats Stats = rewriteAndCheckSemantics(G, 31);
  EXPECT_LT(Stats.FlopsAfter, Stats.FlopsBefore);
}

TEST(RewriteTable4, ReduceSumBitShiftCommutes) {
  // ReduceSum(BitShift(A)) -> BitShift(ReduceSum(A)): #FLOPS mn+m.
  GraphBuilder B(8);
  NodeId A = B.input(Shape({16, 32}));
  NodeId Sh = B.op(OpKind::BitShift, {A},
                   AttrMap().set("bits", int64_t(2)).set("direction",
                                                         int64_t(0)));
  NodeId Out = B.op(OpKind::ReduceSum, {Sh},
                    AttrMap()
                        .set("axes", std::vector<int64_t>{1})
                        .set("keepdims", int64_t(0)));
  B.markOutput(Out);
  Graph G = B.take();
  RewriteStats S = rewriteAndCheckSemantics(G, 37, 1e-2f);
  // mn (shift) + mn (reduce) -> mn (reduce) + m (shift).
  EXPECT_EQ(S.FlopsBefore, 2 * 16 * 32);
  EXPECT_EQ(S.FlopsAfter, 16 * 32 + 16);
}

TEST(RewriteTable4, ReduceProdExpBecomesExpReduceSum) {
  GraphBuilder B(9);
  NodeId A = B.input(Shape({4, 8}));
  NodeId Out = B.op(OpKind::ReduceProd, {B.unary(OpKind::Exp, A)},
                    AttrMap()
                        .set("axes", std::vector<int64_t>{1})
                        .set("keepdims", int64_t(0)));
  B.markOutput(Out);
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 41, 1e-2f);
  bool HasReduceProd = false, HasReduceSum = false;
  for (int Id = 0; Id < G.numNodes(); ++Id) {
    if (G.node(Id).Dead)
      continue;
    HasReduceProd |= G.node(Id).Kind == OpKind::ReduceProd;
    HasReduceSum |= G.node(Id).Kind == OpKind::ReduceSum;
  }
  EXPECT_FALSE(HasReduceProd);
  EXPECT_TRUE(HasReduceSum);
}

//===----------------------------------------------------------------------===//
// Cancellation / canonicalization families
//===----------------------------------------------------------------------===//

struct CancelCase {
  const char *Name;
  OpKind Outer, Inner;
};

class CancelPair : public ::testing::TestWithParam<CancelCase> {};

TEST_P(CancelPair, PairCollapses) {
  CancelCase C = GetParam();
  GraphBuilder B(10);
  NodeId A = B.input(Shape({4, 4}));
  NodeId Out = B.unary(C.Outer, B.unary(C.Inner, A));
  B.markOutput(Out);
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 43);
  EXPECT_EQ(G.countLayers(), 0) << C.Name; // Fully cancelled to the input.
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CancelPair,
    ::testing::Values(CancelCase{"LogExp", OpKind::Log, OpKind::Exp},
                      CancelCase{"ExpLog", OpKind::Exp, OpKind::Log},
                      CancelCase{"RecipRecip", OpKind::Reciprocal,
                                 OpKind::Reciprocal},
                      CancelCase{"NegNeg", OpKind::Neg, OpKind::Neg},
                      CancelCase{"SquareSqrt", OpKind::Square, OpKind::Sqrt}),
    [](const ::testing::TestParamInfo<CancelCase> &Info) {
      return Info.param.Name;
    });

TEST(RewriteCanon, MulSelfBecomesSquareThenChainsWithSqrt) {
  // Mul(Sqrt(A), Sqrt(A)) -> Square(Sqrt(A)) -> A: two rules chain.
  GraphBuilder B(11);
  NodeId A = B.input(Shape({4, 4}));
  NodeId S = B.unary(OpKind::Sqrt, A);
  B.markOutput(B.mul(S, S));
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 47);
  EXPECT_EQ(G.countLayers(), 0);
}

TEST(RewriteCanon, PowVariants) {
  GraphBuilder B(12);
  NodeId A = B.input(Shape({4}));
  NodeId Two = B.scalar(2.0f), Half = B.scalar(0.5f), One = B.scalar(1.0f);
  B.markOutput(B.binary(OpKind::Pow, A, Two));
  B.markOutput(B.binary(OpKind::Pow, A, Half));
  B.markOutput(B.binary(OpKind::Pow, A, One));
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 53);
  int Pows = 0, Squares = 0, Sqrts = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id) {
    if (G.node(Id).Dead)
      continue;
    Pows += G.node(Id).Kind == OpKind::Pow;
    Squares += G.node(Id).Kind == OpKind::Square;
    Sqrts += G.node(Id).Kind == OpKind::Sqrt;
  }
  EXPECT_EQ(Pows, 0);
  EXPECT_EQ(Squares, 1);
  EXPECT_EQ(Sqrts, 1);
}

TEST(RewriteCanon, IdentityOperandsVanish) {
  GraphBuilder B(13);
  NodeId A = B.input(Shape({4}));
  NodeId Out = B.div(B.sub(B.add(B.mul(A, B.scalar(1.0f)), B.scalar(0.0f)),
                           B.scalar(0.0f)),
                     B.scalar(1.0f));
  B.markOutput(Out);
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 59);
  EXPECT_EQ(G.countLayers(), 0);
}

TEST(RewriteCanon, TransposePairCollapses) {
  GraphBuilder B(14);
  NodeId A = B.input(Shape({2, 3, 4}));
  NodeId T1 = B.transpose(A, {2, 0, 1});
  NodeId T2 = B.transpose(T1, {1, 2, 0});
  B.markOutput(B.relu(T2));
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 61);
  int Transposes = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id)
    Transposes += !G.node(Id).Dead && G.node(Id).Kind == OpKind::Transpose;
  EXPECT_EQ(Transposes, 0);
}

TEST(RewriteCanon, ReshapeChainCollapsesToOne) {
  GraphBuilder B(15);
  NodeId A = B.input(Shape({2, 3, 4}));
  NodeId R1 = B.reshape(A, {6, 4});
  NodeId R2 = B.reshape(R1, {24});
  NodeId R3 = B.reshape(R2, {4, 6});
  B.markOutput(B.relu(R3));
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 67);
  int Reorgs = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id)
    Reorgs += !G.node(Id).Dead && G.node(Id).Kind == OpKind::Reshape;
  EXPECT_EQ(Reorgs, 1);
}

//===----------------------------------------------------------------------===//
// Folding
//===----------------------------------------------------------------------===//

TEST(RewriteFold, ConvBatchNormFoldsIntoWeights) {
  GraphBuilder B(16);
  NodeId X = B.input(Shape({1, 3, 8, 8}));
  NodeId C = B.conv(X, 4, {3, 3}, {1, 1}, {1, 1});
  NodeId Bn = B.batchNorm(C);
  B.markOutput(B.relu(Bn));
  Graph G = B.take();
  RewriteStats S = rewriteAndCheckSemantics(G, 71);
  EXPECT_GE(S.PerCategory[static_cast<int>(RuleCategory::Folding)], 1);
  for (int Id = 0; Id < G.numNodes(); ++Id)
    EXPECT_FALSE(!G.node(Id).Dead &&
                 G.node(Id).Kind == OpKind::BatchNormalization);
}

TEST(RewriteFold, ScalarMulFoldsIntoConv) {
  GraphBuilder B(17);
  NodeId X = B.input(Shape({1, 2, 6, 6}));
  NodeId C = B.conv(X, 4, {3, 3});
  B.markOutput(B.mul(C, B.scalar(0.5f)));
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 73);
  int Muls = 0;
  for (int Id = 0; Id < G.numNodes(); ++Id)
    Muls += !G.node(Id).Dead && G.node(Id).Kind == OpKind::Mul;
  EXPECT_EQ(Muls, 0);
}

//===----------------------------------------------------------------------===//
// Driver behaviour
//===----------------------------------------------------------------------===//

TEST(RewriteDriver, TerminatesOnAdversarialChains) {
  // Long alternating chains must reach a fixpoint well under the cap.
  GraphBuilder B(18);
  NodeId X = B.input(Shape({4}));
  NodeId H = X;
  for (int I = 0; I < 40; ++I)
    H = B.unary(I % 2 ? OpKind::Neg : OpKind::Reciprocal, H);
  B.markOutput(H);
  Graph G = B.take();
  RewriteStats S = rewriteGraph(G);
  EXPECT_LT(S.Applications, 1000);
  G.verify();
}

TEST(RewriteDriver, CategoriesCanBeDisabled) {
  GraphBuilder B(19);
  NodeId A = B.input(Shape({4}));
  B.markOutput(B.unary(OpKind::Log, B.unary(OpKind::Exp, A)));
  Graph G = B.take();
  RewriteOptions Opt;
  Opt.EnableCommutative = false;
  RewriteStats S = rewriteGraph(G, Opt);
  EXPECT_EQ(S.PerCategory[static_cast<int>(RuleCategory::Commutative)], 0);
  EXPECT_EQ(G.countLayers(), 2); // Log(Exp) survives.
}

TEST(RewriteDriver, CountsRegions) {
  GraphBuilder B(20);
  NodeId X = B.input(Shape({1, 2, 6, 6}));
  // Two algebraic regions separated by a Conv partition point.
  NodeId R1 = B.mul(B.relu(X), X); // relu is not a region op; mul is.
  NodeId C = B.conv(R1, 2, {3, 3});
  NodeId R2 = B.add(C, C);
  B.markOutput(R2);
  EXPECT_EQ(countRewriteRegions(B.graph()), 2);
}

TEST(RewriteDriver, SharedSubexpressionsAreNotMangled) {
  // A value consumed by two match sites must survive one-use checks.
  GraphBuilder B(21);
  NodeId A = B.input(Shape({4, 4}));
  NodeId E = B.unary(OpKind::Exp, A);
  B.markOutput(B.unary(OpKind::Log, E)); // Log(Exp(A)) -> A.
  B.markOutput(B.mul(E, E));             // Uses Exp twice.
  Graph G = B.take();
  rewriteAndCheckSemantics(G, 79);
}

} // namespace
