//===- tests/test_serving.cpp - The dynamic-batching serving front end -----------===//
//
// The serving layer's contract, end to end: batched execution is
// bit-identical to solo execution across the batch-parameterized zoo,
// admission control sheds with typed statuses (never aborts, never drops),
// the pool stays serviceable after every rejection storm, and the
// multi-model registry survives concurrent load/evict/run races (this file
// runs under TSAN in CI). Saturation behavior is probabilistic by nature,
// so tests assert on invariants — every submit resolves exactly one way —
// rather than on timing.
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include "models/ModelZoo.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "support/LatencyHistogram.h"
#include "tensor/TensorUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace dnnfusion;

namespace {

/// A tiny two-layer MLP at leading-dim batch \p Batch; weights identical at
/// every batch (same seed, same weight order).
Graph mlp(int64_t Batch) {
  GraphBuilder B(77);
  NodeId X = B.input(Shape({Batch, 16}), "features");
  NodeId H = B.relu(B.linear(X, 32));
  B.markOutput(B.softmax(B.linear(H, 8), -1));
  return B.take();
}

/// Distinct deterministic inputs for request \p R of a model with \p Sig.
std::vector<Tensor> requestInputs(const ModelSignature &Sig, uint64_t R) {
  Rng Rand(1000 + R);
  std::vector<Tensor> Inputs;
  for (const TensorSpec &Spec : Sig.Inputs) {
    Tensor T(Spec.Sh, Spec.Ty);
    fillRandom(T, Rand, 0.2f, 1.2f);
    Inputs.push_back(std::move(T));
  }
  return Inputs;
}

void expectBitIdentical(const std::vector<Tensor> &A,
                        const std::vector<Tensor> &B, const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t O = 0; O < A.size(); ++O) {
    ASSERT_EQ(A[O].shape().toString(), B[O].shape().toString()) << What;
    const float *Pa = A[O].data();
    const float *Pb = B[O].data();
    for (int64_t I = 0; I < A[O].shape().numElements(); ++I)
      ASSERT_EQ(Pa[I], Pb[I]) << What << " output " << O << " element " << I;
  }
}

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

TEST(LatencyHistogram, PercentileBracketsRecordedValues) {
  LatencyHistogram H;
  for (int I = 1; I <= 1000; ++I)
    H.record(static_cast<double>(I)); // 1..1000 us, uniform.
  EXPECT_EQ(H.Count, 1000u);
  EXPECT_DOUBLE_EQ(H.MaxMicros, 1000.0);
  // Geometric buckets over-report by at most one bucket width (2^(1/4)).
  double P50 = H.percentile(50.0);
  EXPECT_GE(P50, 500.0 * 0.8);
  EXPECT_LE(P50, 500.0 * 1.3);
  double P99 = H.percentile(99.0);
  EXPECT_GE(P99, 990.0 * 0.8);
  EXPECT_LE(P99, 990.0 * 1.3);
  EXPECT_NEAR(H.meanMicros(), 500.5, 0.01);
}

TEST(LatencyHistogram, AddMergesDistributions) {
  LatencyHistogram A, B;
  A.record(10.0);
  B.record(1000.0);
  A.add(B);
  EXPECT_EQ(A.Count, 2u);
  EXPECT_DOUBLE_EQ(A.MaxMicros, 1000.0);
  EXPECT_GE(A.percentile(99.0), 1000.0 * 0.8);
}

TEST(LatencyHistogram, EmptyPercentileIsZero) {
  LatencyHistogram H;
  EXPECT_DOUBLE_EQ(H.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(H.meanMicros(), 0.0);
}

//===----------------------------------------------------------------------===//
// AdmissionController
//===----------------------------------------------------------------------===//

TEST(AdmissionController, BoundedQueueRejectsWithResourceExhausted) {
  AdmissionOptions O;
  O.MaxQueueDepth = 2;
  AdmissionController A(O);
  EXPECT_TRUE(A.tryAdmit().ok());
  EXPECT_TRUE(A.tryAdmit().ok());
  Status S = A.tryAdmit();
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
  A.release();
  EXPECT_TRUE(A.tryAdmit().ok()); // Capacity returns after release.
  AdmissionStats St = A.stats();
  EXPECT_EQ(St.Admitted, 3u);
  EXPECT_EQ(St.RejectedQueueFull, 1u);
  EXPECT_EQ(St.Depth, 2u);
  EXPECT_EQ(St.HighWaterDepth, 2u);
}

TEST(AdmissionController, DeadlineCheckShedsExpiredRequests) {
  AdmissionController A((AdmissionOptions()));
  auto Now = AdmissionController::Clock::now();
  EXPECT_TRUE(A.checkDeadline(AdmissionController::noDeadline(), Now).ok());
  EXPECT_TRUE(A.checkDeadline(Now + std::chrono::seconds(1), Now).ok());
  Status S = A.checkDeadline(Now - std::chrono::milliseconds(5), Now);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::DeadlineExceeded);
  EXPECT_EQ(A.stats().ShedDeadline, 1u);
}

TEST(AdmissionController, DefaultDeadlineAppliesWhenRequestGivesNone) {
  AdmissionOptions O;
  O.DefaultDeadlineMicros = 1000;
  AdmissionController A(O);
  auto Now = AdmissionController::Clock::now();
  auto D = A.deadlineFor(Now, 0);
  EXPECT_EQ(D, Now + std::chrono::microseconds(1000));
  // An explicit per-request deadline overrides the default.
  EXPECT_EQ(A.deadlineFor(Now, 5000), Now + std::chrono::microseconds(5000));
}

//===----------------------------------------------------------------------===//
// DynamicBatcher: batched vs solo bit-identity
//===----------------------------------------------------------------------===//

/// Runs \p NumRequests concurrent submits through a batching front end and
/// asserts every request's outputs are bit-identical to solo batch-1
/// execution of the same inputs.
void expectBatchedMatchesSolo(DynamicBatcher::GraphFactory Factory,
                              int NumRequests, const char *What) {
  CompileOptions Compile;
  Expected<CompiledModel> Solo = compileModel(Factory(1), Compile);
  ASSERT_TRUE(Solo.ok()) << What << ": " << Solo.status().toString();
  InferenceSession SoloSession(Solo.takeValue());

  BatcherOptions O;
  O.MaxBatchSize = 8;
  O.BatchSizes = {1, 2, 4, 8};
  O.MaxQueueDelayMicros = 50000; // Wide window: coalesce all requests.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(Factory, Compile, O);
  ASSERT_TRUE(B.ok()) << What << ": " << B.status().toString();
  DynamicBatcher &Batcher = *B.value();

  std::vector<std::vector<Tensor>> Inputs;
  std::vector<std::vector<Tensor>> SoloOut;
  for (int R = 0; R < NumRequests; ++R) {
    Inputs.push_back(requestInputs(Batcher.signature(),
                                   static_cast<uint64_t>(R)));
    Expected<std::vector<Tensor>> Out = SoloSession.run(Inputs.back());
    ASSERT_TRUE(Out.ok()) << What << ": " << Out.status().toString();
    SoloOut.push_back(Out.takeValue());
  }

  std::vector<Expected<std::vector<Tensor>>> Served(
      static_cast<size_t>(NumRequests),
      Expected<std::vector<Tensor>>(
          Status::error(ErrorCode::Internal, "request never resolved")));
  std::vector<std::thread> Threads;
  for (int R = 0; R < NumRequests; ++R)
    Threads.emplace_back([&, R] {
      Served[static_cast<size_t>(R)] =
          Batcher.submit(Inputs[static_cast<size_t>(R)]);
    });
  for (std::thread &T : Threads)
    T.join();

  for (int R = 0; R < NumRequests; ++R) {
    ASSERT_TRUE(Served[static_cast<size_t>(R)].ok())
        << What << " request " << R << ": "
        << Served[static_cast<size_t>(R)].status().toString();
    expectBitIdentical(SoloOut[static_cast<size_t>(R)],
                       Served[static_cast<size_t>(R)].value(), What);
  }

  ServingStats S = Batcher.stats();
  EXPECT_EQ(S.Submitted, static_cast<uint64_t>(NumRequests));
  EXPECT_EQ(S.Served, static_cast<uint64_t>(NumRequests));
  EXPECT_EQ(S.TotalMicros.Count, static_cast<uint64_t>(NumRequests));
  EXPECT_EQ(S.QueueMicros.Count, static_cast<uint64_t>(NumRequests));
}

TEST(DynamicBatcher, MlpBatchedBitIdenticalToSolo) {
  expectBatchedMatchesSolo(mlp, 7, "MLP"); // 7 -> greedy 4 + 2 + 1.
}

TEST(DynamicBatcher, ZooBatchedBitIdenticalToSolo) {
  // The batch-parameterized zoo: one transformer of each export flavor plus
  // the CNNs (the remaining transformers share the same builder skeleton).
  for (const char *Name : {"TinyBERT", "GPT-2", "VGG-16", "U-Net"}) {
    auto Factory = [Name](int64_t Batch) {
      return buildModelBatched(Name, Batch);
    };
    expectBatchedMatchesSolo(Factory, 5, Name); // 5 -> greedy 4 + 1.
  }
}

TEST(DynamicBatcher, BatchedBuilderAtBatchOneMatchesZooBuilder) {
  // The weight-identity contract the factory relies on: batched builders at
  // B=1 reproduce the zoo builder bit-for-bit.
  for (const std::string &Name : batchedModelNames()) {
    Expected<CompiledModel> A = compileModel(buildModel(Name));
    Expected<CompiledModel> B = compileModel(buildModelBatched(Name, 1));
    ASSERT_TRUE(A.ok() && B.ok()) << Name;
    InferenceSession Sa(A.takeValue()), Sb(B.takeValue());
    std::vector<Tensor> In = requestInputs(Sa.signature(), 7);
    Expected<std::vector<Tensor>> Oa = Sa.run(In);
    Expected<std::vector<Tensor>> Ob = Sb.run(In);
    ASSERT_TRUE(Oa.ok() && Ob.ok()) << Name;
    expectBitIdentical(Oa.value(), Ob.value(), Name.c_str());
  }
}

TEST(DynamicBatcher, CoalescesConcurrentRequestsIntoFewerExecutions) {
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxBatchSize = 8;
  O.MaxQueueDelayMicros = 100000; // Wide enough to definitely coalesce.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 1);
  std::vector<std::thread> Threads;
  for (int R = 0; R < 8; ++R)
    Threads.emplace_back([&] {
      Expected<std::vector<Tensor>> Out = B.value()->submit(In);
      EXPECT_TRUE(Out.ok());
    });
  for (std::thread &T : Threads)
    T.join();
  ServingStats S = B.value()->stats();
  EXPECT_EQ(S.Served, 8u);
  // 8 requests in a 100 ms window on one dispatcher must coalesce: strictly
  // fewer executions than requests.
  EXPECT_LT(S.BatchesExecuted, 8u);
  uint64_t WeightedRequests = 0;
  for (size_t K = 0; K < S.BatchSizeCounts.size(); ++K)
    WeightedRequests += static_cast<uint64_t>(K) * S.BatchSizeCounts[K];
  EXPECT_EQ(WeightedRequests, 8u); // Every request in exactly one batch.
}

//===----------------------------------------------------------------------===//
// Saturation: shedding is typed, the pool survives
//===----------------------------------------------------------------------===//

TEST(DynamicBatcher, QueueFullRejectsThenServes) {
  CompileOptions Compile;
  BatcherOptions O;
  O.Admission.MaxQueueDepth = 1;
  O.MaxQueueDelayMicros = 100000; // Hold the first request in the window.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 2);

  std::thread First([&] {
    Expected<std::vector<Tensor>> Out = B.value()->submit(In);
    EXPECT_TRUE(Out.ok());
  });
  // Wait until the first request owns the queue slot.
  while (B.value()->stats().QueueDepth == 0 &&
         B.value()->stats().Served == 0)
    std::this_thread::yield();

  Expected<std::vector<Tensor>> Rejected = B.value()->submit(In);
  if (!Rejected.ok()) { // Racing with completion: rejection is the norm.
    EXPECT_EQ(Rejected.status().code(), ErrorCode::ResourceExhausted);
  }
  First.join();

  // Pool integrity: once the queue drains, the same front end serves again.
  Expected<std::vector<Tensor>> After = B.value()->submit(In);
  EXPECT_TRUE(After.ok()) << After.status().toString();
}

TEST(DynamicBatcher, DeadlineStormShedsEveryExpiredRequestTyped) {
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxQueueDelayMicros = 20000; // Requests sit 20 ms before dispatch.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 3);

  const int N = 6;
  std::atomic<int> Shed{0}, ServedCount{0};
  std::vector<std::thread> Threads;
  for (int R = 0; R < N; ++R)
    Threads.emplace_back([&] {
      // 1 us deadline: expired long before the 20 ms window closes.
      Expected<std::vector<Tensor>> Out = B.value()->submit(In, 1);
      if (Out.ok()) {
        ++ServedCount;
      } else {
        EXPECT_EQ(Out.status().code(), ErrorCode::DeadlineExceeded)
            << Out.status().toString();
        ++Shed;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Shed + ServedCount, N); // Every request resolved exactly once.
  EXPECT_GT(Shed.load(), 0);        // The storm actually shed.
  ServingStats S = B.value()->stats();
  EXPECT_EQ(S.ShedDeadline, static_cast<uint64_t>(Shed.load()));

  // Pool integrity: an undeadlined request after the storm is served.
  Expected<std::vector<Tensor>> After = B.value()->submit(In);
  EXPECT_TRUE(After.ok()) << After.status().toString();
  EXPECT_EQ(B.value()->stats().Served,
            static_cast<uint64_t>(ServedCount.load()) + 1);
}

TEST(DynamicBatcher, ShutdownDrainsQueuedRequestsWithTypedStatus) {
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxQueueDelayMicros = 500000; // Long window: requests stay queued.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 4);

  const int N = 3;
  std::atomic<int> Resolved{0};
  std::vector<std::thread> Threads;
  for (int R = 0; R < N; ++R)
    Threads.emplace_back([&] {
      Expected<std::vector<Tensor>> Out = B.value()->submit(In);
      // Drained requests get FailedPrecondition; a request that raced
      // ahead of shutdown may have been served. Both are clean exits.
      if (!Out.ok()) {
        EXPECT_EQ(Out.status().code(), ErrorCode::FailedPrecondition)
            << Out.status().toString();
      }
      ++Resolved;
    });
  while (B.value()->stats().QueueDepth < N &&
         B.value()->stats().Served + B.value()->stats().ShedShutdown <
             static_cast<uint64_t>(N))
    std::this_thread::yield();
  B.value().reset(); // Destruction drains: no submit may hang or abort.
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Resolved.load(), N);
}

TEST(DynamicBatcher, BrokenFactoryFallsBackToSoloExecution) {
  // A factory that ignores the batch argument breaks the leading-dim
  // contract for every bucket > 1: the batcher must mark those buckets
  // dead and still serve every request through the batch-1 session.
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxQueueDelayMicros = 30000;
  auto Broken = [](int64_t) { return mlp(1); };
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(Broken, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 5);
  std::vector<std::thread> Threads;
  for (int R = 0; R < 4; ++R)
    Threads.emplace_back([&] {
      Expected<std::vector<Tensor>> Out = B.value()->submit(In);
      EXPECT_TRUE(Out.ok()) << Out.status().toString();
    });
  for (std::thread &T : Threads)
    T.join();
  ServingStats S = B.value()->stats();
  EXPECT_EQ(S.Served, 4u);
  EXPECT_GT(S.VariantCompileFailures, 0u);
  // Only bucket 1 executions happened.
  for (size_t K = 2; K < S.BatchSizeCounts.size(); ++K)
    EXPECT_EQ(S.BatchSizeCounts[K], 0u) << "bucket " << K;
}

TEST(DynamicBatcher, InvalidRequestIsRejectedBeforeQueueing) {
  CompileOptions Compile;
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, {});
  ASSERT_TRUE(B.ok());
  Expected<std::vector<Tensor>> Out =
      B.value()->submit({Tensor::full(Shape({3, 3}), 1.0f)});
  ASSERT_FALSE(Out.ok());
  ServingStats S = B.value()->stats();
  EXPECT_EQ(S.RejectedValidation, 1u);
  EXPECT_EQ(S.QueueMicros.Count, 0u); // Never queued.
}

//===----------------------------------------------------------------------===//
// Resilience: circuit breakers, combined shedding gates, shutdown races
//===----------------------------------------------------------------------===//

TEST(DynamicBatcher, BreakerTripsDecomposesAndRecovers) {
  FaultInjection::instance().reset();
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxBatchSize = 4;
  O.BatchSizes = {1, 2, 4};
  O.MaxQueueDelayMicros = 100000; // Wide enough to definitely coalesce.
  O.BreakerCooldownMicros = 30000;
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 12);
  auto submitWave = [&] {
    std::vector<std::thread> Threads;
    for (int R = 0; R < 4; ++R)
      Threads.emplace_back([&] {
        Expected<std::vector<Tensor>> Out = B.value()->submit(In);
        // Only a fault landing on a solo execution (ladder floor) may
        // surface to a caller; everything else decomposes and serves.
        if (!Out.ok()) {
          EXPECT_EQ(Out.status().code(), ErrorCode::Internal)
              << Out.status().toString();
        }
      });
    for (std::thread &T : Threads)
      T.join();
  };

  submitWave(); // Warm, un-faulted: compiles the coalesced-bucket variant.
  ASSERT_EQ(B.value()->stats().Served, 4u);

  // One injected block fault per wave: the coalesced batch's execution
  // fails, its bucket's breaker trips, and the work decomposes down the
  // ladder instead of failing the requests. A wave that happens not to
  // coalesce (fault burns on a solo run, no trip) is retried.
  FaultSpec Once;
  Once.MaxTriggers = 1;
  for (int Wave = 0; Wave < 10 && B.value()->stats().BreakerTrips == 0;
       ++Wave) {
    FaultInjection::instance().arm(faultpoints::ExecBlock, Once);
    submitWave();
    FaultInjection::instance().reset();
  }
  ServingStats Tripped = B.value()->stats();
  EXPECT_GE(Tripped.BreakerTrips, 1u);
  EXPECT_GE(Tripped.DegradedRequests, 1u); // Decomposition was forced...
  EXPECT_EQ(Tripped.QueueDepth, 0u);       // ...and nothing was stranded.

  // After the cooldown, one dispatch hands the open bucket out as a
  // half-open probe; the healthy execution restores it to service.
  std::this_thread::sleep_for(
      std::chrono::microseconds(2 * O.BreakerCooldownMicros));
  for (int Wave = 0; Wave < 10 && B.value()->stats().BreakerRestores == 0;
       ++Wave)
    submitWave();
  ServingStats Restored = B.value()->stats();
  EXPECT_GE(Restored.BreakerReprobes, 1u);
  EXPECT_GE(Restored.BreakerRestores, 1u);
  FaultInjection::instance().reset();
}

TEST(DynamicBatcher, QueueFullAndDeadlineStormResolvesEverySubmitOnce) {
  CompileOptions Compile;
  BatcherOptions O;
  O.Admission.MaxQueueDepth = 2;
  O.MaxQueueDelayMicros = 20000;
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 13);

  // 1 us deadlines against a 20 ms window and a 2-deep queue: both
  // shedding gates fire across the same storm, and every submit must
  // still resolve exactly once with a typed outcome.
  const int N = 16;
  std::atomic<int> Ok{0}, QueueFull{0}, Deadline{0}, Other{0};
  std::vector<std::thread> Threads;
  for (int R = 0; R < N; ++R)
    Threads.emplace_back([&] {
      Expected<std::vector<Tensor>> Out = B.value()->submit(In, 1);
      if (Out.ok())
        ++Ok;
      else if (Out.status().code() == ErrorCode::ResourceExhausted)
        ++QueueFull;
      else if (Out.status().code() == ErrorCode::DeadlineExceeded)
        ++Deadline;
      else
        ++Other;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Ok + QueueFull + Deadline, N);
  EXPECT_EQ(Other.load(), 0);
  EXPECT_GT(Deadline.load(), 0);  // The admitted requests expired...
  EXPECT_GT(QueueFull.load(), 0); // ...while holding the queue full.
  ServingStats S = B.value()->stats();
  EXPECT_EQ(S.Submitted, static_cast<uint64_t>(N));
  EXPECT_EQ(S.ShedQueueFull, static_cast<uint64_t>(QueueFull.load()));
  EXPECT_EQ(S.ShedDeadline + S.DeadlineMidExecution,
            static_cast<uint64_t>(Deadline.load()));
  EXPECT_EQ(S.QueueDepth, 0u); // Nothing stranded.

  // Both gates clear: an undeadlined submit is served.
  Expected<std::vector<Tensor>> After = B.value()->submit(In);
  EXPECT_TRUE(After.ok()) << After.status().toString();
}

TEST(DynamicBatcher, ShutdownRacesInFlightSubmitsCleanly) {
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxBatchSize = 2;            // Small batches: several dispatches race.
  O.MaxQueueDelayMicros = 20000; // Requests pile up before the window closes.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 14);

  const int N = 6;
  std::atomic<int> Resolved{0};
  std::vector<std::thread> Threads;
  for (int R = 0; R < N; ++R)
    Threads.emplace_back([&] {
      Expected<std::vector<Tensor>> Out = B.value()->submit(In);
      // Served or drained; either way typed, exactly once.
      if (!Out.ok()) {
        EXPECT_EQ(Out.status().code(), ErrorCode::FailedPrecondition)
            << Out.status().toString();
      }
      ++Resolved;
    });

  // Destroy only once every request is queued or resolved: a request in
  // neither count is still inside submit()'s pre-queue section, which the
  // destructor does not synchronize with (reading Resolved first keeps
  // the check conservative — a request can only move queued -> resolved).
  for (;;) {
    int Done = Resolved.load();
    if (Done + static_cast<int>(B.value()->stats().QueueDepth) >= N)
      break;
    std::this_thread::yield();
  }
  B.value().reset(); // Races the dispatcher mid-window / mid-batch.
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Resolved.load(), N); // No submit hung and none vanished.
}

//===----------------------------------------------------------------------===//
// ModelRegistry
//===----------------------------------------------------------------------===//

TEST(ModelRegistry, LoadAliasRunEvict) {
  ModelRegistry R;
  ASSERT_TRUE(R.load("mlp-v1", mlp).ok());
  ASSERT_TRUE(R.alias("default", "mlp-v1").ok());
  EXPECT_EQ(R.names(), (std::vector<std::string>{"default", "mlp-v1"}));

  Expected<std::shared_ptr<DynamicBatcher>> B = R.acquire("default");
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 6);
  Expected<std::vector<Tensor>> Out = R.run("default", In);
  ASSERT_TRUE(Out.ok()) << Out.status().toString();

  // Duplicate and dangling names are typed rejections.
  EXPECT_EQ(R.load("mlp-v1", mlp).code(), ErrorCode::FailedPrecondition);
  EXPECT_EQ(R.alias("default", "mlp-v1").code(),
            ErrorCode::FailedPrecondition);
  EXPECT_EQ(R.alias("x", "nope").code(), ErrorCode::NotFound);

  // Evicting the canonical name detaches its aliases too.
  ASSERT_TRUE(R.evict("mlp-v1").ok());
  EXPECT_TRUE(R.names().empty());
  EXPECT_EQ(R.run("default", In).status().code(), ErrorCode::NotFound);

  // The acquired handle outlives the evict — in-flight traffic finishes.
  Expected<std::vector<Tensor>> Late = B.value()->submit(In);
  EXPECT_TRUE(Late.ok()) << Late.status().toString();

  RegistryStats St = R.stats();
  EXPECT_EQ(St.Loads, 1u);
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_EQ(St.Models, 0u);
}

TEST(ModelRegistry, EvictingAliasKeepsModelServing) {
  ModelRegistry R;
  ASSERT_TRUE(R.load("m", mlp).ok());
  ASSERT_TRUE(R.alias("a", "m").ok());
  ASSERT_TRUE(R.evict("a").ok());
  EXPECT_EQ(R.names(), std::vector<std::string>{"m"});
  EXPECT_EQ(R.stats().Evictions, 0u); // Alias detach is not a model evict.
  std::vector<Tensor> In;
  Expected<std::shared_ptr<DynamicBatcher>> B = R.acquire("m");
  ASSERT_TRUE(B.ok());
  In = requestInputs(B.value()->signature(), 8);
  EXPECT_TRUE(R.run("m", In).ok());
}

TEST(ModelRegistry, GraphAndArtifactLoadsServeBatchOne) {
  ModelRegistry R;
  ASSERT_TRUE(R.loadGraph("fixed", mlp(1)).ok());
  Expected<std::shared_ptr<DynamicBatcher>> B = R.acquire("fixed");
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 9);
  EXPECT_TRUE(R.run("fixed", In).ok());

  // Round-trip through a saved artifact.
  std::string Path = ::testing::TempDir() + "serving_artifact.dnnf";
  Expected<CompiledModel> M = compileModel(mlp(1));
  ASSERT_TRUE(M.ok());
  ASSERT_TRUE(saveModel(M.value(), Path).ok());
  ASSERT_TRUE(R.loadArtifact("from-disk", Path).ok());
  EXPECT_TRUE(R.run("from-disk", In).ok());
  // Corrupt artifacts are typed rejections, not aborts.
  ASSERT_TRUE(writeFileAtomic(Path, "not an artifact").ok());
  EXPECT_FALSE(R.loadArtifact("bad", Path).ok());
  EXPECT_EQ(R.run("bad", In).status().code(), ErrorCode::NotFound);
}

TEST(ModelRegistry, ConcurrentLoadEvictRunRacesAreClean) {
  // Hammer one name from servers and an evict/reload loop from an operator
  // thread. Every run() resolves with outputs or a typed status; TSAN (CI)
  // checks the synchronization.
  ModelRegistry R;
  ASSERT_TRUE(R.load("hot", mlp).ok());
  std::vector<Tensor> In;
  {
    Expected<std::shared_ptr<DynamicBatcher>> B = R.acquire("hot");
    ASSERT_TRUE(B.ok());
    In = requestInputs(B.value()->signature(), 10);
  }
  std::atomic<bool> Stop{false};
  std::atomic<int> ServedCount{0}, Missed{0};
  std::vector<std::thread> Servers;
  for (int T = 0; T < 3; ++T)
    Servers.emplace_back([&] {
      while (!Stop) {
        Expected<std::vector<Tensor>> Out = R.run("hot", In);
        if (Out.ok()) {
          ++ServedCount;
        } else {
          // NotFound (evicted) or FailedPrecondition (shutdown drain while
          // an evicted batcher destructs) are the only clean misses.
          EXPECT_TRUE(Out.status().code() == ErrorCode::NotFound ||
                      Out.status().code() == ErrorCode::FailedPrecondition)
              << Out.status().toString();
          ++Missed;
        }
      }
    });
  for (int Cycle = 0; Cycle < 5; ++Cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(R.evict("hot").ok());
    ASSERT_TRUE(R.load("hot", mlp).ok());
  }
  Stop = true;
  for (std::thread &T : Servers)
    T.join();
  EXPECT_GT(ServedCount.load(), 0);
  RegistryStats St = R.stats();
  EXPECT_EQ(St.Loads, 6u);
  EXPECT_EQ(St.Evictions, 5u);
  EXPECT_EQ(St.Models, 1u);
}

//===----------------------------------------------------------------------===//
// Session metrics plumb through
//===----------------------------------------------------------------------===//

TEST(ServingMetrics, ExecLatencyHistogramFeedsFromSessions) {
  CompileOptions Compile;
  BatcherOptions O;
  O.MaxQueueDelayMicros = 0; // Dispatch immediately.
  Expected<std::unique_ptr<DynamicBatcher>> B =
      DynamicBatcher::create(mlp, Compile, O);
  ASSERT_TRUE(B.ok());
  std::vector<Tensor> In = requestInputs(B.value()->signature(), 11);
  for (int R = 0; R < 3; ++R)
    ASSERT_TRUE(B.value()->submit(In).ok());
  ServingStats S = B.value()->stats();
  EXPECT_EQ(S.Sessions.RequestsServed, 3u);
  EXPECT_EQ(S.Sessions.ExecMicros.Count, 3u);
  EXPECT_GT(S.Sessions.ExecMicros.MaxMicros, 0.0);
  EXPECT_GT(S.TotalMicros.percentile(50.0), 0.0);
}

} // namespace
