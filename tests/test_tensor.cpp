//===- tests/test_tensor.cpp - tensor/ unit tests ------------------------------===//

#include "ops/IndexUtils.h"
#include "tensor/Tensor.h"
#include "tensor/TensorUtils.h"

#include <gtest/gtest.h>

using namespace dnnfusion;

namespace {

TEST(Shape, Basics) {
  Shape S({2, 3, 4});
  EXPECT_EQ(S.rank(), 3);
  EXPECT_EQ(S.numElements(), 24);
  EXPECT_EQ(S.dim(1), 3);
  EXPECT_EQ(S.toString(), "2x3x4");
  EXPECT_EQ(Shape().numElements(), 1);
  EXPECT_EQ(Shape().toString(), "scalar");
}

TEST(Shape, RowMajorStrides) {
  Shape S({2, 3, 4});
  EXPECT_EQ(S.rowMajorStrides(), (std::vector<int64_t>{12, 4, 1}));
}

TEST(Shape, FlattenUnflattenRoundTrip) {
  Shape S({3, 5, 7});
  std::vector<int64_t> Coords;
  for (int64_t Flat = 0; Flat < S.numElements(); ++Flat) {
    S.unflatten(Flat, Coords);
    EXPECT_EQ(S.flatten(Coords), Flat);
  }
}

TEST(Shape, BroadcastRules) {
  EXPECT_EQ(Shape::broadcast(Shape({4, 1}), Shape({3})), Shape({4, 3}));
  EXPECT_EQ(Shape::broadcast(Shape({1}), Shape({2, 3})), Shape({2, 3}));
  EXPECT_EQ(Shape::broadcast(Shape({2, 3}), Shape({2, 3})), Shape({2, 3}));
  EXPECT_TRUE(Shape::broadcastCompatible(Shape({5, 1, 3}), Shape({2, 3})));
  EXPECT_FALSE(Shape::broadcastCompatible(Shape({4}), Shape({3})));
}

TEST(ShapeDeath, BadBroadcastAborts) {
  EXPECT_DEATH(Shape::broadcast(Shape({4}), Shape({3})), "do not broadcast");
}

TEST(Tensor, ZerosAndFull) {
  Tensor Z = Tensor::zeros(Shape({2, 2}));
  Tensor F = Tensor::full(Shape({2, 2}), 3.5f);
  for (int64_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Z.at(I), 0.0f);
    EXPECT_EQ(F.at(I), 3.5f);
  }
}

TEST(Tensor, ReshapedSharesStorage) {
  Tensor T = Tensor::full(Shape({2, 6}), 1.0f);
  Tensor V = T.reshaped(Shape({3, 4}));
  EXPECT_TRUE(T.sharesStorageWith(V));
  V.at(0) = 9.0f;
  EXPECT_EQ(T.at(0), 9.0f);
}

TEST(TensorDeath, ReshapeElementMismatchAborts) {
  Tensor T(Shape({2, 3}));
  EXPECT_DEATH(T.reshaped(Shape({7})), "changes element count");
}

TEST(Tensor, BorrowViewsCallerMemory) {
  float Data[6] = {0, 1, 2, 3, 4, 5};
  Tensor V = Tensor::borrow(Data, Shape({2, 3}));
  EXPECT_EQ(V.at(4), 4.0f);
  V.at(4) = 44.0f;
  EXPECT_EQ(Data[4], 44.0f);
}

TEST(TensorUtils, AllCloseAndMaxAbsDiff) {
  Tensor A = Tensor::full(Shape({4}), 1.0f);
  Tensor B = Tensor::full(Shape({4}), 1.0f);
  B.at(2) = 1.0005f;
  EXPECT_TRUE(allClose(A, B, 1e-3f, 1e-3f));
  EXPECT_FALSE(allClose(A, B, 1e-6f, 1e-6f));
  EXPECT_NEAR(maxAbsDiff(A, B), 0.0005f, 1e-6f);
}

TEST(TensorUtils, AllCloseRejectsShapeMismatch) {
  EXPECT_FALSE(allClose(Tensor::zeros(Shape({2})), Tensor::zeros(Shape({3}))));
}

TEST(TensorUtils, FillRandomDeterministic) {
  Rng R1(9), R2(9);
  Tensor A(Shape({16})), B(Shape({16}));
  fillRandom(A, R1);
  fillRandom(B, R2);
  EXPECT_EQ(maxAbsDiff(A, B), 0.0f);
}

TEST(IndexUtils, BroadcastStrides) {
  EXPECT_EQ(broadcastStrides(Shape({3}), Shape({2, 3})),
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(broadcastStrides(Shape({2, 1}), Shape({2, 3})),
            (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(broadcastStrides(Shape({2, 3}), Shape({2, 3})),
            (std::vector<int64_t>{3, 1}));
}

TEST(IndexUtils, StridedIteratorMatchesManualWalk) {
  Shape Out({2, 3, 2});
  std::vector<int64_t> Strides = {1, 10, 100}; // Deliberately non-row-major.
  StridedIndexIterator It(Out, Strides);
  std::vector<int64_t> Coords;
  for (int64_t Flat = 0; Flat < Out.numElements(); ++Flat) {
    Out.unflatten(Flat, Coords);
    int64_t Expected = Coords[0] * 1 + Coords[1] * 10 + Coords[2] * 100;
    EXPECT_EQ(It.offset(), Expected) << "flat " << Flat;
    It.next();
  }
}

class ShapeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ShapeRoundTrip, RandomShapesFlattenInvertibly) {
  Rng R(static_cast<uint64_t>(GetParam()));
  int RankV = static_cast<int>(R.nextInRange(1, 5));
  std::vector<int64_t> Dims;
  for (int D = 0; D < RankV; ++D)
    Dims.push_back(R.nextInRange(1, 6));
  Shape S(Dims);
  std::vector<int64_t> Coords;
  for (int64_t Flat = 0; Flat < S.numElements(); ++Flat) {
    S.unflatten(Flat, Coords);
    ASSERT_EQ(S.flatten(Coords), Flat);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShapeRoundTrip, ::testing::Range(0, 20));

} // namespace
