//===- tests/TestUtils.h - Shared test helpers ---------------------*- C++ -*-===//
//
// Part of the DNNFusion reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared across the test suite: running a graph through the
/// no-fusion reference pipeline and through the fully optimized pipeline,
/// and comparing outputs.
///
//===----------------------------------------------------------------------===//

#ifndef DNNFUSION_TESTS_TESTUTILS_H
#define DNNFUSION_TESTS_TESTUTILS_H

#include "GraphFuzz.h"
#include "runtime/ExecutionContext.h"
#include "runtime/ModelCompiler.h"
#include "support/StringUtils.h"
#include "tensor/TensorUtils.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

namespace dnnfusion {
namespace testutil {

/// Random inputs for every Input node of \p G (positive-safe domain so
/// Sqrt/Log/Div stay finite).
inline std::vector<Tensor> randomInputs(const Graph &G, uint64_t Seed,
                                        float Lo = 0.2f, float Hi = 1.2f) {
  Rng R(Seed);
  std::vector<Tensor> Inputs;
  for (int Id = 0; Id < G.numNodes(); ++Id) {
    const Node &N = G.node(Id);
    if (!N.Dead && N.Kind == OpKind::Input) {
      Tensor T(N.OutShape);
      fillRandom(T, R, Lo, Hi);
      Inputs.push_back(std::move(T));
    }
  }
  return Inputs;
}

/// Runs \p G unoptimized (no rewriting, no fusion) with strictly
/// sequential block execution — the reference result.
inline std::vector<Tensor> runReference(const Graph &G,
                                        const std::vector<Tensor> &Inputs) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.EnableFusion = false;
  Opt.EnableOtherOpts = false;
  CompiledModel M = cantFail(compileModel(G, Opt));
  ExecutionOptions Exec;
  Exec.Mode = ExecutionOptions::Schedule::Sequential;
  ExecutionContext E(M, Exec);
  return E.run(Inputs);
}

/// Runs \p G through the full DNNFusion pipeline with \p Options (default
/// wavefront dispatch, so every comparison against runReference also
/// differentially tests the concurrent executor).
inline std::vector<Tensor> runOptimized(const Graph &G,
                                        const std::vector<Tensor> &Inputs,
                                        const CompileOptions &Options = {}) {
  CompiledModel M = cantFail(compileModel(G, Options));
  ExecutionContext E(M);
  return E.run(Inputs);
}

/// Asserts the optimized pipeline reproduces the reference outputs. Output
/// comparison itself lives in GraphFuzz.h (compareOutputs) so this layer
/// and the fuzz harness report failures uniformly.
inline void expectOptimizedMatchesReference(const Graph &G, uint64_t Seed,
                                            const CompileOptions &Options = {},
                                            float RelTol = 2e-3f,
                                            float AbsTol = 2e-3f) {
  std::vector<Tensor> Inputs = randomInputs(G, Seed);
  std::vector<Tensor> Ref = runReference(G, Inputs);
  std::vector<Tensor> Opt = runOptimized(G, Inputs, Options);
  std::optional<std::string> Diff = compareOutputs(Ref, Opt, RelTol, AbsTol);
  EXPECT_FALSE(Diff.has_value()) << *Diff;
}

/// Asserts the optimized pipeline reproduces the reference outputs under
/// every configuration of the differential matrix (see GraphFuzz.h),
/// honoring each config's own tolerance (exact configs stay strict, the
/// fused-attention relaxation stays at its documented bound) and the
/// bit-identity pairings between configs.
inline void
expectMatchesReferenceUnderMatrix(const Graph &G, uint64_t Seed,
                                  float RelTol = 2e-3f, float AbsTol = 2e-3f) {
  std::vector<Tensor> Inputs = randomInputs(G, Seed);
  std::vector<Tensor> Ref = runReference(G, Inputs);
  std::map<std::string, std::vector<Tensor>> ByName;
  for (const DiffConfig &Config : defaultConfigMatrix()) {
    std::vector<Tensor> Opt = runOptimized(G, Inputs, Config.Options);
    float Rel = Config.RelTol >= 0.0f ? Config.RelTol : RelTol;
    float Abs = Config.AbsTol >= 0.0f ? Config.AbsTol : AbsTol;
    std::optional<std::string> Diff = compareOutputs(Ref, Opt, Rel, Abs);
    EXPECT_FALSE(Diff.has_value()) << "config " << Config.Name << ": " << *Diff;
    if (!Config.BitIdenticalTo.empty()) {
      auto Base = ByName.find(Config.BitIdenticalTo);
      ASSERT_NE(Base, ByName.end()) << Config.Name;
      std::optional<std::string> Exact =
          compareOutputs(Base->second, Opt, 0.0f, 0.0f);
      EXPECT_FALSE(Exact.has_value())
          << Config.BitIdenticalTo << " vs " << Config.Name
          << " (bit-identity): " << *Exact;
    }
    ByName.emplace(Config.Name, std::move(Opt));
  }
}

} // namespace testutil
} // namespace dnnfusion

#endif // DNNFUSION_TESTS_TESTUTILS_H
