//===- tests/test_ops.cpp - operator schema and kernel tests --------------------===//

#include "ops/Kernels.h"
#include "ops/OpSchema.h"
#include "ops/Scalars.h"
#include "tensor/TensorUtils.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dnnfusion;

namespace {

Tensor runOp(OpKind Kind, const AttrMap &Attrs,
             const std::vector<const Tensor *> &Inputs) {
  std::vector<Shape> Shapes;
  for (const Tensor *T : Inputs)
    Shapes.push_back(T->shape());
  Tensor Out(inferShape(Kind, Attrs, Shapes));
  runRefKernel(Kind, Attrs, Inputs, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Table 2: mapping-type classification
//===----------------------------------------------------------------------===//

TEST(MappingTable2, RepresentativeClassifications) {
  EXPECT_EQ(staticMappingType(OpKind::Add), MappingType::OneToOne);
  EXPECT_EQ(staticMappingType(OpKind::Relu), MappingType::OneToOne);
  EXPECT_EQ(staticMappingType(OpKind::Concat), MappingType::OneToOne);
  EXPECT_EQ(staticMappingType(OpKind::Slice), MappingType::OneToOne);
  EXPECT_EQ(staticMappingType(OpKind::BatchNormalization),
            MappingType::OneToOne);
  EXPECT_EQ(staticMappingType(OpKind::Expand), MappingType::OneToMany);
  EXPECT_EQ(staticMappingType(OpKind::Gather), MappingType::OneToMany);
  EXPECT_EQ(staticMappingType(OpKind::Resize), MappingType::OneToMany);
  EXPECT_EQ(staticMappingType(OpKind::Conv), MappingType::ManyToMany);
  EXPECT_EQ(staticMappingType(OpKind::Gemm), MappingType::ManyToMany);
  EXPECT_EQ(staticMappingType(OpKind::Softmax), MappingType::ManyToMany);
  EXPECT_EQ(staticMappingType(OpKind::ReduceProd), MappingType::ManyToMany);
  EXPECT_EQ(staticMappingType(OpKind::Reshape), MappingType::Reorganize);
  EXPECT_EQ(staticMappingType(OpKind::Flatten), MappingType::Reorganize);
  EXPECT_EQ(staticMappingType(OpKind::Transpose), MappingType::Shuffle);
  EXPECT_EQ(staticMappingType(OpKind::DepthToSpace), MappingType::Shuffle);
}

TEST(MappingTable2, BroadcastLiftsToOneToMany) {
  AttrMap None;
  EXPECT_EQ(mappingType(OpKind::Add, None, {Shape({2, 3}), Shape({2, 3})}),
            MappingType::OneToOne);
  EXPECT_EQ(mappingType(OpKind::Add, None, {Shape({2, 3}), Shape({3})}),
            MappingType::OneToMany);
  EXPECT_EQ(mappingType(OpKind::Mul, None, {Shape({2, 3}), Shape({1})}),
            MappingType::OneToMany);
}

TEST(MappingTable2, EveryOperatorIsClassified) {
  for (int I = 0; I < NumOpKinds; ++I) {
    OpKind K = opKindFromIndex(I);
    MappingType MT = staticMappingType(K);
    EXPECT_GE(transformationImpedance(MT), 0);
    EXPECT_LE(mappingComplexity(MT), 4);
  }
}

//===----------------------------------------------------------------------===//
// Shape inference
//===----------------------------------------------------------------------===//

TEST(ShapeInference, Conv2d) {
  AttrMap A;
  A.set("strides", std::vector<int64_t>{2, 2});
  A.set("pads", std::vector<int64_t>{1, 1});
  Shape Out = inferShape(OpKind::Conv, A,
                         {Shape({1, 3, 8, 8}), Shape({16, 3, 3, 3})});
  EXPECT_EQ(Out, Shape({1, 16, 4, 4}));
}

TEST(ShapeInference, ConvGrouped) {
  AttrMap A;
  A.set("group", int64_t(4));
  Shape Out = inferShape(OpKind::Conv, A,
                         {Shape({1, 4, 5, 5}), Shape({4, 1, 3, 3})});
  EXPECT_EQ(Out, Shape({1, 4, 3, 3}));
}

TEST(ShapeInference, Conv3d) {
  Shape Out = inferShape(OpKind::Conv, AttrMap().set("pads",
                                                     std::vector<int64_t>{1, 1, 1}),
                         {Shape({1, 2, 4, 6, 6}), Shape({8, 2, 3, 3, 3})});
  EXPECT_EQ(Out, Shape({1, 8, 4, 6, 6}));
}

TEST(ShapeInference, ConvTranspose) {
  AttrMap A;
  A.set("strides", std::vector<int64_t>{2, 2});
  Shape Out = inferShape(OpKind::ConvTranspose, A,
                         {Shape({1, 4, 5, 5}), Shape({4, 8, 2, 2})});
  EXPECT_EQ(Out, Shape({1, 8, 10, 10}));
}

TEST(ShapeInference, MatMulBatchBroadcast) {
  Shape Out = inferShape(OpKind::MatMul, {},
                         {Shape({2, 1, 4, 5}), Shape({3, 5, 6})});
  EXPECT_EQ(Out, Shape({2, 3, 4, 6}));
}

TEST(ShapeInference, GemmTransposed) {
  AttrMap A;
  A.set("transA", int64_t(1)).set("transB", int64_t(1));
  EXPECT_EQ(inferShape(OpKind::Gemm, A, {Shape({5, 3}), Shape({4, 5})}),
            Shape({3, 4}));
}

TEST(ShapeInference, ReduceKeepDims) {
  AttrMap Keep;
  Keep.set("axes", std::vector<int64_t>{1}).set("keepdims", int64_t(1));
  EXPECT_EQ(inferShape(OpKind::ReduceSum, Keep, {Shape({2, 3, 4})}),
            Shape({2, 1, 4}));
  AttrMap Drop;
  Drop.set("axes", std::vector<int64_t>{-1}).set("keepdims", int64_t(0));
  EXPECT_EQ(inferShape(OpKind::ReduceMean, Drop, {Shape({2, 3, 4})}),
            Shape({2, 3}));
}

TEST(ShapeInference, ReshapeInfersMinusOne) {
  EXPECT_EQ(inferShape(OpKind::Reshape,
                       AttrMap().set("shape", std::vector<int64_t>{2, -1}),
                       {Shape({4, 3})}),
            Shape({2, 6}));
}

TEST(ShapeInference, SliceNegativeIndices) {
  AttrMap A;
  A.set("starts", std::vector<int64_t>{-2});
  A.set("ends", std::vector<int64_t>{1000});
  A.set("axes", std::vector<int64_t>{1});
  EXPECT_EQ(inferShape(OpKind::Slice, A, {Shape({2, 5})}), Shape({2, 2}));
}

TEST(ShapeInference, ConcatGatherTransposeDepthToSpace) {
  EXPECT_EQ(inferShape(OpKind::Concat, AttrMap().set("axis", int64_t(1)),
                       {Shape({2, 3}), Shape({2, 5})}),
            Shape({2, 8}));
  EXPECT_EQ(inferShape(OpKind::Gather,
                       AttrMap()
                           .set("axis", int64_t(0))
                           .set("indices", std::vector<int64_t>{2, 0, 2}),
                       {Shape({4, 5})}),
            Shape({3, 5}));
  EXPECT_EQ(inferShape(OpKind::Transpose,
                       AttrMap().set("perm", std::vector<int64_t>{2, 0, 1}),
                       {Shape({2, 3, 4})}),
            Shape({4, 2, 3}));
  EXPECT_EQ(inferShape(OpKind::DepthToSpace,
                       AttrMap().set("blocksize", int64_t(2)),
                       {Shape({1, 8, 3, 3})}),
            Shape({1, 2, 6, 6}));
}

TEST(ShapeInferenceDeath, MismatchesAbort) {
  EXPECT_DEATH(inferShape(OpKind::MatMul, {}, {Shape({2, 3}), Shape({4, 5})}),
               "inner dimension");
  EXPECT_DEATH(inferShape(OpKind::Conv, {},
                          {Shape({1, 3, 8, 8}), Shape({8, 4, 3, 3})}),
               "channel mismatch");
}

//===----------------------------------------------------------------------===//
// FLOP accounting (Table 4 conventions)
//===----------------------------------------------------------------------===//

TEST(FlopCount, ElementwiseIsOnePerElement) {
  Shape S({4, 8});
  EXPECT_EQ(flopCount(OpKind::Mul, {}, {S, S}, S), 32);
  EXPECT_EQ(flopCount(OpKind::Exp, {}, {S}, S), 32);
  EXPECT_EQ(flopCount(OpKind::BitShift, {}, {S}, S), 32);
}

TEST(FlopCount, ReductionIsOnePerInputElement) {
  AttrMap A;
  A.set("axes", std::vector<int64_t>{1});
  EXPECT_EQ(flopCount(OpKind::ReduceSum, A, {Shape({4, 8})}, Shape({4, 1})),
            32);
}

TEST(FlopCount, ConvAndMatMul) {
  AttrMap None;
  // Conv: 2 * out * Cg * k * k (+ out for bias).
  EXPECT_EQ(flopCount(OpKind::Conv, None,
                      {Shape({1, 3, 8, 8}), Shape({16, 3, 3, 3})},
                      Shape({1, 16, 6, 6})),
            2ll * 16 * 36 * 27);
  EXPECT_EQ(flopCount(OpKind::MatMul, None, {Shape({4, 5}), Shape({5, 6})},
                      Shape({4, 6})),
            2ll * 4 * 6 * 5);
  EXPECT_EQ(flopCount(OpKind::Transpose, None, {Shape({4, 5})}, Shape({5, 4})),
            0);
}

//===----------------------------------------------------------------------===//
// Elementwise kernels vs <cmath>
//===----------------------------------------------------------------------===//

struct UnaryCase {
  OpKind Kind;
  float (*Ref)(float);
};

class UnaryKernel : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryKernel, MatchesReferenceFunction) {
  UnaryCase C = GetParam();
  Rng R(11);
  Tensor In(Shape({3, 17}));
  fillRandom(In, R, 0.05f, 0.95f); // Domain-safe for Log/Sqrt/Asin.
  Tensor Out = runOp(C.Kind, {}, {&In});
  for (int64_t I = 0; I < In.numElements(); ++I)
    EXPECT_NEAR(Out.at(I), C.Ref(In.at(I)), 1e-5f) << opKindName(C.Kind);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnaryKernel,
    ::testing::Values(
        UnaryCase{OpKind::Relu, [](float X) { return X > 0 ? X : 0; }},
        UnaryCase{OpKind::Sigmoid,
                  [](float X) { return 1.0f / (1.0f + std::exp(-X)); }},
        UnaryCase{OpKind::Tanh, [](float X) { return std::tanh(X); }},
        UnaryCase{OpKind::Exp, [](float X) { return std::exp(X); }},
        UnaryCase{OpKind::Log, [](float X) { return std::log(X); }},
        UnaryCase{OpKind::Sqrt, [](float X) { return std::sqrt(X); }},
        UnaryCase{OpKind::Reciprocal, [](float X) { return 1.0f / X; }},
        UnaryCase{OpKind::Abs, [](float X) { return std::fabs(X); }},
        UnaryCase{OpKind::Square, [](float X) { return X * X; }},
        UnaryCase{OpKind::Erf, [](float X) { return std::erf(X); }},
        UnaryCase{OpKind::Neg, [](float X) { return -X; }},
        UnaryCase{OpKind::Ceil, [](float X) { return std::ceil(X); }},
        UnaryCase{OpKind::Floor, [](float X) { return std::floor(X); }},
        UnaryCase{OpKind::Sin, [](float X) { return std::sin(X); }},
        UnaryCase{OpKind::Cos, [](float X) { return std::cos(X); }},
        UnaryCase{OpKind::Asin, [](float X) { return std::asin(X); }}),
    [](const ::testing::TestParamInfo<UnaryCase> &Info) {
      return opKindName(Info.param.Kind);
    });

TEST(ElementwiseKernel, ClipAndLeakyReluParams) {
  Tensor In(Shape({5}));
  fillIota(In, -2.0f, 1.0f); // -2,-1,0,1,2
  Tensor Clipped =
      runOp(OpKind::Clip, AttrMap().set("min", -1.0).set("max", 1.0), {&In});
  EXPECT_EQ(Clipped.at(0), -1.0f);
  EXPECT_EQ(Clipped.at(4), 1.0f);
  EXPECT_EQ(Clipped.at(2), 0.0f);
  Tensor Leaky = runOp(OpKind::LeakyRelu, AttrMap().set("alpha", 0.5), {&In});
  EXPECT_EQ(Leaky.at(0), -1.0f);
  EXPECT_EQ(Leaky.at(4), 2.0f);
}

TEST(ElementwiseKernel, BitShiftIsExactPowerOfTwoScaling) {
  Tensor In(Shape({4}));
  fillIota(In, 1.0f, 1.0f);
  Tensor L = runOp(OpKind::BitShift,
                   AttrMap().set("bits", int64_t(3)).set("direction",
                                                         int64_t(0)),
                   {&In});
  EXPECT_EQ(L.at(2), 24.0f);
  Tensor Rt = runOp(OpKind::BitShift,
                    AttrMap().set("bits", int64_t(1)).set("direction",
                                                          int64_t(1)),
                    {&In});
  EXPECT_EQ(Rt.at(3), 2.0f);
}

TEST(ElementwiseKernel, BinaryBroadcast) {
  Tensor A(Shape({2, 3}));
  fillIota(A, 1.0f, 1.0f);
  Tensor B(Shape({3}));
  fillIota(B, 10.0f, 10.0f); // 10,20,30
  Tensor Out = runOp(OpKind::Add, {}, {&A, &B});
  EXPECT_EQ(Out.shape(), Shape({2, 3}));
  EXPECT_EQ(Out.at(0), 11.0f);
  EXPECT_EQ(Out.at(5), 36.0f);
}

TEST(ElementwiseKernel, WhereSelects) {
  Tensor C(Shape({4})), X = Tensor::full(Shape({4}), 1.0f),
                        Y = Tensor::full(Shape({4}), 2.0f);
  C.at(0) = 1;
  C.at(1) = 0;
  C.at(2) = 1;
  C.at(3) = 0;
  Tensor Out = runOp(OpKind::Where, {}, {&C, &X, &Y});
  EXPECT_EQ(Out.at(0), 1.0f);
  EXPECT_EQ(Out.at(1), 2.0f);
}

TEST(ElementwiseKernel, BatchNormMatchesFormula) {
  Rng R(3);
  Tensor X(Shape({1, 2, 2, 2})), S(Shape({2})), B(Shape({2})), M(Shape({2})),
      V(Shape({2}));
  fillRandom(X, R);
  fillRandomPositive(S, R);
  fillRandom(B, R);
  fillRandom(M, R);
  fillRandomPositive(V, R);
  Tensor Out = runOp(OpKind::BatchNormalization,
                     AttrMap().set("epsilon", 1e-5), {&X, &S, &B, &M, &V});
  for (int64_t C = 0; C < 2; ++C)
    for (int64_t I = 0; I < 4; ++I) {
      float Xv = X.at(C * 4 + I);
      float Expected = S.at(C) * (Xv - M.at(C)) /
                           std::sqrt(V.at(C) + 1e-5f) +
                       B.at(C);
      EXPECT_NEAR(Out.at(C * 4 + I), Expected, 1e-5f);
    }
}

//===----------------------------------------------------------------------===//
// Heavy kernels: cross-checked implementations
//===----------------------------------------------------------------------===//

TEST(ConvKernel, IdentityKernelPreservesInput) {
  // 1x1 kernel with identity weights on one channel copies the input.
  Tensor X(Shape({1, 1, 4, 4}));
  fillIota(X);
  Tensor W = Tensor::full(Shape({1, 1, 1, 1}), 1.0f);
  Tensor Out = runOp(OpKind::Conv, {}, {&X, &W});
  EXPECT_EQ(maxAbsDiff(Out.reshaped(X.shape()), X), 0.0f);
}

TEST(ConvKernel, MatchesIm2colMatMul) {
  // Property: conv == im2col + matmul on a random problem.
  Rng R(17);
  int64_t C = 3, F = 4, H = 6, W = 6, K = 3;
  Tensor X(Shape({1, C, H, W})), Wt(Shape({F, C, K, K}));
  fillRandom(X, R);
  fillRandom(Wt, R);
  Tensor Conv = runOp(OpKind::Conv, {}, {&X, &Wt});
  int64_t OH = H - K + 1, OW = W - K + 1;
  for (int64_t Fi = 0; Fi < F; ++Fi)
    for (int64_t Oh = 0; Oh < OH; ++Oh)
      for (int64_t Ow = 0; Ow < OW; ++Ow) {
        float Acc = 0;
        for (int64_t Ci = 0; Ci < C; ++Ci)
          for (int64_t Kh = 0; Kh < K; ++Kh)
            for (int64_t Kw = 0; Kw < K; ++Kw)
              Acc += X.at((Ci * H + Oh + Kh) * W + Ow + Kw) *
                     Wt.at(((Fi * C + Ci) * K + Kh) * K + Kw);
        EXPECT_NEAR(Conv.at((Fi * OH + Oh) * OW + Ow), Acc, 1e-4f);
      }
}

TEST(ConvKernel, Conv3dMatchesGenericPath) {
  // The specialized 3-D kernel must agree with naive accumulation.
  Rng R(23);
  Tensor X(Shape({1, 2, 3, 4, 4})), W(Shape({2, 2, 2, 2, 2}));
  fillRandom(X, R);
  fillRandom(W, R);
  Tensor Out = runOp(OpKind::Conv, {}, {&X, &W});
  // Hand-compute one output element.
  float Acc = 0;
  for (int64_t Ci = 0; Ci < 2; ++Ci)
    for (int64_t D = 0; D < 2; ++D)
      for (int64_t Hh = 0; Hh < 2; ++Hh)
        for (int64_t Ww = 0; Ww < 2; ++Ww)
          Acc += X.at(((Ci * 3 + D) * 4 + Hh) * 4 + Ww) *
                 W.at((((0 * 2 + Ci) * 2 + D) * 2 + Hh) * 2 + Ww);
  EXPECT_NEAR(Out.at(0), Acc, 1e-4f);
}

TEST(MatMulKernel, MatchesNaive) {
  Rng R(29);
  Tensor A(Shape({2, 4, 5})), B(Shape({2, 5, 3}));
  fillRandom(A, R);
  fillRandom(B, R);
  Tensor Out = runOp(OpKind::MatMul, {}, {&A, &B});
  for (int64_t Bi = 0; Bi < 2; ++Bi)
    for (int64_t I = 0; I < 4; ++I)
      for (int64_t J = 0; J < 3; ++J) {
        float Acc = 0;
        for (int64_t K = 0; K < 5; ++K)
          Acc += A.at((Bi * 4 + I) * 5 + K) * B.at((Bi * 5 + K) * 3 + J);
        EXPECT_NEAR(Out.at((Bi * 4 + I) * 3 + J), Acc, 1e-4f);
      }
}

TEST(MatMulKernel, GemmTransposesAgree) {
  Rng R(31);
  Tensor A(Shape({4, 5})), B(Shape({5, 3}));
  fillRandom(A, R);
  fillRandom(B, R);
  Tensor Plain = runOp(OpKind::Gemm, {}, {&A, &B});
  // Transposed copies must give the same product.
  Tensor At(Shape({5, 4})), Bt(Shape({3, 5}));
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t K = 0; K < 5; ++K)
      At.at(K * 4 + I) = A.at(I * 5 + K);
  for (int64_t K = 0; K < 5; ++K)
    for (int64_t J = 0; J < 3; ++J)
      Bt.at(J * 5 + K) = B.at(K * 3 + J);
  Tensor Trans = runOp(
      OpKind::Gemm, AttrMap().set("transA", int64_t(1)).set("transB", int64_t(1)),
      {&At, &Bt});
  EXPECT_LT(maxAbsDiff(Plain, Trans), 1e-4f);
}

TEST(MatMulKernel, TiledAgreesWithReference) {
  Rng R(37);
  int64_t M = 33, N = 29, K = 41;
  Tensor A(Shape({M, K})), B(Shape({K, N}));
  fillRandom(A, R);
  fillRandom(B, R);
  Tensor Ref = runOp(OpKind::MatMul, {}, {&A, &B});
  for (KernelConfig Config : {KernelConfig{8, 8, 8, 1}, KernelConfig{16, 64, 32, 2},
                              KernelConfig{256, 256, 256, 4}}) {
    Tensor Out(Shape({M, N}));
    matmulTiled(A.data(), B.data(), Out.data(), M, N, K, Config);
    EXPECT_LT(maxAbsDiff(Out, Ref), 1e-3f);
  }
}

TEST(PoolKernel, MaxAndAverage) {
  Tensor X(Shape({1, 1, 4, 4}));
  fillIota(X); // 0..15
  AttrMap A;
  A.set("kernel", std::vector<int64_t>{2, 2});
  A.set("strides", std::vector<int64_t>{2, 2});
  Tensor Max = runOp(OpKind::MaxPool, A, {&X});
  EXPECT_EQ(Max.at(0), 5.0f);
  EXPECT_EQ(Max.at(3), 15.0f);
  Tensor Avg = runOp(OpKind::AveragePool, A, {&X});
  EXPECT_EQ(Avg.at(0), 2.5f);
}

TEST(PoolKernel, PaddedAverageDividesByValidCount) {
  Tensor X = Tensor::full(Shape({1, 1, 2, 2}), 4.0f);
  AttrMap A;
  A.set("kernel", std::vector<int64_t>{2, 2});
  A.set("pads", std::vector<int64_t>{1, 1});
  Tensor Avg = runOp(OpKind::AveragePool, A, {&X});
  // Corner windows see a single valid element: average must stay 4.
  EXPECT_EQ(Avg.at(0), 4.0f);
}

TEST(ReduceKernel, SumMeanMaxProd) {
  Tensor X(Shape({2, 3}));
  fillIota(X, 1.0f, 1.0f); // 1..6
  AttrMap A;
  A.set("axes", std::vector<int64_t>{1}).set("keepdims", int64_t(0));
  EXPECT_EQ(runOp(OpKind::ReduceSum, A, {&X}).at(0), 6.0f);
  EXPECT_EQ(runOp(OpKind::ReduceMean, A, {&X}).at(1), 5.0f);
  EXPECT_EQ(runOp(OpKind::ReduceMax, A, {&X}).at(1), 6.0f);
  EXPECT_EQ(runOp(OpKind::ReduceMin, A, {&X}).at(0), 1.0f);
  EXPECT_EQ(runOp(OpKind::ReduceProd, A, {&X}).at(0), 6.0f);
}

TEST(ReduceKernel, MultiAxis) {
  Tensor X = Tensor::full(Shape({2, 3, 4}), 1.0f);
  AttrMap A;
  A.set("axes", std::vector<int64_t>{0, 2}).set("keepdims", int64_t(1));
  Tensor Out = runOp(OpKind::ReduceSum, A, {&X});
  EXPECT_EQ(Out.shape(), Shape({1, 3, 1}));
  EXPECT_EQ(Out.at(0), 8.0f);
}

TEST(SoftmaxKernel, RowsSumToOne) {
  Rng R(41);
  Tensor X(Shape({3, 7}));
  fillRandom(X, R, -5.0f, 5.0f);
  Tensor Out = runOp(OpKind::Softmax, AttrMap().set("axis", int64_t(-1)), {&X});
  for (int64_t Row = 0; Row < 3; ++Row) {
    float Sum = 0;
    for (int64_t J = 0; J < 7; ++J) {
      float V = Out.at(Row * 7 + J);
      EXPECT_GT(V, 0.0f);
      Sum += V;
    }
    EXPECT_NEAR(Sum, 1.0f, 1e-5f);
  }
}

TEST(CumSumKernel, PrefixAlongAxis) {
  Tensor X = Tensor::full(Shape({2, 4}), 1.0f);
  Tensor Out = runOp(OpKind::CumSum, AttrMap().set("axis", int64_t(1)), {&X});
  EXPECT_EQ(Out.at(3), 4.0f);
  EXPECT_EQ(Out.at(4), 1.0f);
}

TEST(DataKernel, SpaceToDepthInvertsDepthToSpace) {
  Rng R(43);
  Tensor X(Shape({1, 8, 4, 4}));
  fillRandom(X, R);
  AttrMap A;
  A.set("blocksize", int64_t(2));
  Tensor D2s = runOp(OpKind::DepthToSpace, A, {&X});
  Tensor Back = runOp(OpKind::SpaceToDepth, A, {&D2s});
  EXPECT_EQ(maxAbsDiff(Back, X), 0.0f);
}

TEST(DataKernel, TransposeTwiceIsIdentity) {
  Rng R(47);
  Tensor X(Shape({2, 3, 4}));
  fillRandom(X, R);
  AttrMap P1, P2;
  P1.set("perm", std::vector<int64_t>{2, 0, 1});
  P2.set("perm", std::vector<int64_t>{1, 2, 0});
  Tensor Y = runOp(OpKind::Transpose, P1, {&X});
  Tensor Z = runOp(OpKind::Transpose, P2, {&Y});
  EXPECT_EQ(maxAbsDiff(Z.reshaped(X.shape()), X), 0.0f);
}

TEST(DataKernel, ConcatOfSlicesReassembles) {
  Rng R(53);
  Tensor X(Shape({2, 6}));
  fillRandom(X, R);
  auto SliceAttr = [](int64_t S, int64_t E) {
    return AttrMap()
        .set("starts", std::vector<int64_t>{S})
        .set("ends", std::vector<int64_t>{E})
        .set("axes", std::vector<int64_t>{1});
  };
  Tensor A = runOp(OpKind::Slice, SliceAttr(0, 2), {&X});
  Tensor B = runOp(OpKind::Slice, SliceAttr(2, 6), {&X});
  Tensor Cat = runOp(OpKind::Concat, AttrMap().set("axis", int64_t(1)),
                     {&A, &B});
  EXPECT_EQ(maxAbsDiff(Cat, X), 0.0f);
}

TEST(DataKernel, GatherSelectsRows) {
  Tensor X(Shape({3, 2}));
  fillIota(X); // rows [0,1],[2,3],[4,5]
  Tensor Out = runOp(OpKind::Gather,
                     AttrMap()
                         .set("axis", int64_t(0))
                         .set("indices", std::vector<int64_t>{2, 0}),
                     {&X});
  EXPECT_EQ(Out.at(0), 4.0f);
  EXPECT_EQ(Out.at(2), 0.0f);
}

TEST(DataKernel, UpsampleNearestRepeats) {
  Tensor X(Shape({1, 1, 2, 2}));
  fillIota(X);
  Tensor Out = runOp(OpKind::Upsample,
                     AttrMap().set("scales", std::vector<int64_t>{1, 1, 2, 2}),
                     {&X});
  EXPECT_EQ(Out.shape(), Shape({1, 1, 4, 4}));
  EXPECT_EQ(Out.at(0), 0.0f);
  EXPECT_EQ(Out.at(1), 0.0f);
  EXPECT_EQ(Out.at(5), 0.0f);
  EXPECT_EQ(Out.at(10), 3.0f); // Bottom-right block repeats value 3.
}

TEST(InstanceNormKernel, NormalizesPerChannel) {
  Rng R(59);
  Tensor X(Shape({1, 2, 4, 4})), S = Tensor::full(Shape({2}), 1.0f),
                                 B = Tensor::zeros(Shape({2}));
  fillRandom(X, R, -3.0f, 3.0f);
  Tensor Out = runOp(OpKind::InstanceNormalization,
                     AttrMap().set("epsilon", 1e-5), {&X, &S, &B});
  for (int64_t C = 0; C < 2; ++C) {
    double Mean = 0;
    for (int64_t I = 0; I < 16; ++I)
      Mean += Out.at(C * 16 + I);
    EXPECT_NEAR(Mean / 16.0, 0.0, 1e-4);
  }
}

} // namespace
