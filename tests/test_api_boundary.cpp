//===- tests/test_api_boundary.cpp - the serving-grade public API boundary --------===//
//
// The recoverable error model end to end, driven exclusively through the
// stable facade (<dnnfusion/dnnfusion.h>): malformed graphs are rejected at
// the compile boundary with an InvalidGraph Status, malformed inference
// requests (wrong arity / shape / dtype / unknown name) are rejected with a
// clean Status before any execution context is leased, the session stays
// fully serviceable afterwards, and SessionMetrics counts it all. No
// user-supplied bad input on these paths may abort the process — every
// test here doubles as a liveness proof, since an abort kills the binary.
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include <gtest/gtest.h>

using namespace dnnfusion;

namespace {

/// conv -> batchnorm -> relu with one named input and one output.
Graph smallModel(uint64_t Seed = 11) {
  GraphBuilder B(Seed);
  NodeId X = B.input(Shape({1, 3, 16, 16}), "image");
  B.markOutput(B.relu(B.batchNorm(B.conv(X, 4, {3, 3}, {1, 1}, {1, 1}))));
  return B.take();
}

Tensor imageTensor(float Fill = 0.5f) {
  return Tensor::full(Shape({1, 3, 16, 16}), Fill);
}

//===----------------------------------------------------------------------===//
// Compile boundary: malformed graphs return Status, not abort
//===----------------------------------------------------------------------===//

TEST(CompileBoundary, GraphWithNoOutputsIsRejected) {
  GraphBuilder B(1);
  B.relu(B.input(Shape({4})));
  // markOutput never called.
  Expected<CompiledModel> M = compileModel(B.take());
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidGraph);
  EXPECT_NE(M.status().message().find("no outputs"), std::string::npos)
      << M.status().toString();
}

TEST(CompileBoundary, ShapeInconsistencyIsRejected) {
  GraphBuilder B(2);
  NodeId X = B.input(Shape({4}));
  NodeId R = B.relu(X);
  B.markOutput(R);
  Graph G = B.take();
  // Corrupt the stored shape so it disagrees with inference — the kind of
  // inconsistency a buggy importer could hand the compile boundary.
  G.node(R).OutShape = Shape({5});
  Expected<CompiledModel> M = compileModel(std::move(G));
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidGraph);
  EXPECT_NE(M.status().message().find("disagrees"), std::string::npos);
}

TEST(CompileBoundary, DuplicateInputNamesAreRejected) {
  GraphBuilder B(3);
  NodeId X = B.input(Shape({4}), "x");
  NodeId Y = B.input(Shape({4}), "x");
  B.markOutput(B.add(X, Y));
  Expected<CompiledModel> M = compileModel(B.take());
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidGraph);
  EXPECT_NE(M.status().message().find("duplicate input name"),
            std::string::npos);
}

TEST(CompileBoundary, GeneratedDefaultInputNamesAvoidExplicitCollisions) {
  // An explicit "input1" followed by an unnamed input (whose default
  // would be "input1" by node id) must still compile: generated names
  // probe past collisions rather than tripping the duplicate check.
  GraphBuilder B(7);
  NodeId A = B.input(Shape({4}), "input1");
  NodeId C = B.input(Shape({4}));
  B.markOutput(B.add(A, C));
  Expected<CompiledModel> M = compileModel(B.take());
  ASSERT_TRUE(M.ok()) << M.status().toString();
  ASSERT_EQ(M->Signature.Inputs.size(), 2u);
  EXPECT_NE(M->Signature.Inputs[0].Name, M->Signature.Inputs[1].Name);
}

TEST(CompileBoundary, NonBroadcastableOperandsAreRejected) {
  // Shape inference itself diagnoses this class (Shape::broadcast and
  // friends abort); the compile boundary must trap it into a Status.
  GraphBuilder B(6);
  NodeId X = B.input(Shape({4}));
  NodeId Y = B.input(Shape({4}));
  B.markOutput(B.add(X, Y));
  Graph G = B.take();
  G.node(X).OutShape = Shape({5}); // No longer broadcasts against {4}.
  Expected<CompiledModel> M = compileModel(std::move(G));
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidGraph);
  EXPECT_NE(M.status().message().find("fails shape inference"),
            std::string::npos)
      << M.status().toString();
}

TEST(CompileBoundary, CycleIsRejected) {
  GraphBuilder B(4);
  NodeId X = B.input(Shape({4}));
  NodeId A = B.relu(X);
  NodeId C = B.relu(A);
  B.markOutput(C);
  Graph G = B.take();
  G.node(A).Inputs[0] = C; // A <-> C cycle behind the builder's back.
  Expected<CompiledModel> M = compileModel(std::move(G));
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidGraph);
  EXPECT_NE(M.status().message().find("cycle"), std::string::npos);
}

TEST(CompileBoundary, CompileModelWithPlanValidatesTheGraphToo) {
  GraphBuilder B(5);
  B.relu(B.input(Shape({4})));
  Expected<CompiledModel> M = compileModelWithPlan(B.take(), FusionPlan());
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), ErrorCode::InvalidGraph);
}

TEST(CompileBoundary, ValidGraphStillCompiles) {
  Expected<CompiledModel> M = compileModel(smallModel());
  ASSERT_TRUE(M.ok()) << M.status().toString();
  EXPECT_GT(M->kernelLaunches(), 0);
}

//===----------------------------------------------------------------------===//
// ModelSignature
//===----------------------------------------------------------------------===//

TEST(ModelSignature, CarriesNamedShapedDtypedInputsAndOutputs) {
  CompiledModel M = cantFail(compileModel(smallModel()));
  ASSERT_EQ(M.Signature.Inputs.size(), 1u);
  EXPECT_EQ(M.Signature.Inputs[0].Name, "image");
  EXPECT_EQ(M.Signature.Inputs[0].Sh, Shape({1, 3, 16, 16}));
  EXPECT_EQ(M.Signature.Inputs[0].Ty, DType::Float32);
  ASSERT_EQ(M.Signature.Outputs.size(), 1u);
  EXPECT_EQ(M.Signature.Outputs[0].Sh, Shape({1, 4, 16, 16}));
  EXPECT_EQ(M.Signature.inputIndex("image"), 0);
  EXPECT_EQ(M.Signature.inputIndex("nope"), -1);
  EXPECT_NE(M.Signature.toString().find("image: 1x3x16x16 f32"),
            std::string::npos)
      << M.Signature.toString();
}

TEST(ModelSignature, SurvivesRewritingAndMatchesRunConvention) {
  // Graph rewriting (Conv+BN fold) must not change the model interface.
  CompiledModel Full = cantFail(compileModel(smallModel()));
  CompileOptions Off;
  Off.EnableGraphRewriting = false;
  CompiledModel Raw = cantFail(compileModel(smallModel(), Off));
  ASSERT_EQ(Full.Signature.Inputs.size(), Raw.Signature.Inputs.size());
  for (size_t I = 0; I < Full.Signature.Inputs.size(); ++I) {
    EXPECT_EQ(Full.Signature.Inputs[I].Name, Raw.Signature.Inputs[I].Name);
    EXPECT_EQ(Full.Signature.Inputs[I].Sh, Raw.Signature.Inputs[I].Sh);
  }
}

//===----------------------------------------------------------------------===//
// Request validation: reject, survive, keep serving
//===----------------------------------------------------------------------===//

class ApiBoundary : public ::testing::Test {
protected:
  ApiBoundary() : Session(cantFail(compileModel(smallModel()))) {}
  InferenceSession Session;
};

TEST_F(ApiBoundary, WrongArityIsRejectedBeforeLeasingAContext) {
  EXPECT_FALSE(Session.run(std::vector<Tensor>{}).ok());
  EXPECT_FALSE(
      Session.run(std::vector<Tensor>{imageTensor(), imageTensor()}).ok());
  Expected<std::vector<Tensor>> R = Session.run(std::vector<Tensor>{});
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R.status().message().find("inputs"), std::string::npos);
  // Validation happens before any context is created or leased.
  EXPECT_EQ(Session.contextsCreated(), 0u);
}

TEST_F(ApiBoundary, WrongShapeIsRejectedWithInputName) {
  Expected<std::vector<Tensor>> R =
      Session.run({Tensor::zeros(Shape({1, 3, 8, 8}))});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R.status().message().find("image"), std::string::npos)
      << R.status().toString();
  EXPECT_NE(R.status().message().find("1x3x8x8"), std::string::npos);
}

TEST_F(ApiBoundary, WrongDtypeIsRejected) {
  Expected<std::vector<Tensor>> R =
      Session.run({Tensor(Shape({1, 3, 16, 16}), DType::Int32)});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R.status().message().find("dtype"), std::string::npos);
}

TEST_F(ApiBoundary, NullTensorIsRejected) {
  Expected<std::vector<Tensor>> R = Session.run({Tensor()});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
}

TEST_F(ApiBoundary, UnknownNameIsRejected) {
  Expected<std::vector<Tensor>> R =
      Session.run({{"not_an_input", imageTensor()}});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::NotFound);
  EXPECT_NE(R.status().message().find("not_an_input"), std::string::npos);
}

TEST_F(ApiBoundary, MissingNamedInputIsRejected) {
  Expected<std::vector<Tensor>> R =
      Session.run(std::map<std::string, Tensor>{});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R.status().message().find("image"), std::string::npos);
}

TEST_F(ApiBoundary, NamedRunMatchesPositionalRun) {
  std::vector<Tensor> Positional = cantFail(Session.run({imageTensor()}));
  std::vector<Tensor> Named =
      cantFail(Session.run({{"image", imageTensor()}}));
  ASSERT_EQ(Positional.size(), Named.size());
  for (size_t I = 0; I < Positional.size(); ++I)
    for (int64_t E = 0; E < Positional[I].numElements(); ++E)
      ASSERT_EQ(Positional[I].at(E), Named[I].at(E));
}

TEST_F(ApiBoundary, SessionServesValidRequestsAfterAStormOfBadOnes) {
  std::vector<Tensor> Golden = cantFail(Session.run({imageTensor()}));
  unsigned ContextsAfterFirstRun = Session.contextsCreated();
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(Session.run(std::vector<Tensor>{}).ok());
    EXPECT_FALSE(Session.run({Tensor::zeros(Shape({2, 2}))}).ok());
    EXPECT_FALSE(Session.run({{"bogus", imageTensor()}}).ok());
  }
  // Pool state intact: rejections never leased (or leaked) a context.
  EXPECT_EQ(Session.contextsCreated(), ContextsAfterFirstRun);
  std::vector<Tensor> After = cantFail(Session.run({imageTensor()}));
  ASSERT_EQ(After.size(), Golden.size());
  for (size_t I = 0; I < After.size(); ++I)
    for (int64_t E = 0; E < After[I].numElements(); ++E)
      ASSERT_EQ(After[I].at(E), Golden[I].at(E));
}

TEST_F(ApiBoundary, BatchFailuresAreIndexTaggedAndDoNotPoisonSiblings) {
  std::vector<Tensor> Golden = cantFail(Session.run({imageTensor()}));
  std::vector<std::vector<Tensor>> Batch;
  Batch.push_back({imageTensor()});
  Batch.push_back({Tensor::zeros(Shape({1, 1}))}); // Malformed.
  Batch.push_back({imageTensor()});
  std::vector<Expected<std::vector<Tensor>>> R = Session.runBatch(Batch);
  ASSERT_EQ(R.size(), Batch.size());
  // The malformed entry carries its own index-tagged Status...
  ASSERT_FALSE(R[1].ok());
  EXPECT_EQ(R[1].status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R[1].status().message().find("batch request 1"),
            std::string::npos)
      << R[1].status().toString();
  // ...while its siblings executed to correct results regardless.
  for (size_t E : {size_t(0), size_t(2)}) {
    ASSERT_TRUE(R[E].ok()) << R[E].status().toString();
    ASSERT_EQ(R[E].value().size(), Golden.size());
    for (size_t I = 0; I < Golden.size(); ++I)
      for (int64_t J = 0; J < Golden[I].numElements(); ++J)
        ASSERT_EQ(R[E].value()[I].at(J), Golden[I].at(J));
  }
  // A fully clean batch succeeds entry-wise.
  Batch[1] = {imageTensor()};
  for (const Expected<std::vector<Tensor>> &Entry : Session.runBatch(Batch))
    EXPECT_TRUE(Entry.ok()) << Entry.status().toString();
}

TEST_F(ApiBoundary, ValidateRequestMirrorsRunAcceptance) {
  EXPECT_TRUE(Session.validateRequest({imageTensor()}).ok());
  EXPECT_FALSE(Session.validateRequest({}).ok());
  EXPECT_FALSE(
      Session.validateRequest({Tensor::zeros(Shape({1, 3, 8, 8}))}).ok());
  // validateRequest alone never counts as a rejected request.
  EXPECT_EQ(Session.metrics().RequestsRejected, 0u);
}

//===----------------------------------------------------------------------===//
// SessionMetrics
//===----------------------------------------------------------------------===//

TEST_F(ApiBoundary, MetricsCountServedRejectedAndWallTime) {
  SessionMetrics Before = Session.metrics();
  EXPECT_EQ(Before.RequestsServed, 0u);
  EXPECT_EQ(Before.RequestsRejected, 0u);
  EXPECT_EQ(Before.CumulativeWallMs, 0.0);

  cantFail(Session.run({imageTensor()}));
  cantFail(Session.run({{"image", imageTensor()}}));
  EXPECT_FALSE(Session.run(std::vector<Tensor>{}).ok());
  EXPECT_FALSE(Session.run({{"bogus", imageTensor()}}).ok());
  for (const Expected<std::vector<Tensor>> &Entry :
       Session.runBatch({{imageTensor()}, {imageTensor()}}))
    EXPECT_TRUE(Entry.ok()) << Entry.status().toString();

  SessionMetrics After = Session.metrics();
  EXPECT_EQ(After.RequestsServed, 4u);
  EXPECT_EQ(After.RequestsRejected, 2u);
  EXPECT_EQ(After.RequestsFailed, 0u);
  EXPECT_GT(After.CumulativeWallMs, 0.0);
}

//===----------------------------------------------------------------------===//
// Status / Expected plumbing visible through the facade
//===----------------------------------------------------------------------===//

TEST(StatusThroughFacade, ErrorsRenderCodeAndMessage) {
  Status S = Status::errorf(ErrorCode::InvalidArgument, "bad %s #%d", "input",
                            3);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.toString(), "invalid_argument: bad input #3");
}

} // namespace
