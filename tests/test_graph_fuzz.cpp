//===- tests/test_graph_fuzz.cpp - differential fuzzing sweep ------------------===//
//
// Drives the differential-testing subsystem (tests/GraphFuzz.{h,cpp}):
//
//  * self-tests of the generator (determinism, validity, bounds, full
//    OpKind coverage across the sweep's seed range),
//  * self-tests of the shrinker against synthetic failure predicates, and
//  * the main sweep: >= 200 seeded random graphs, each run through the
//    reference pipeline and the full CompileOptions matrix (4
//    configurations); any divergence is shrunk and reported as compilable
//    GraphBuilder code.
//
//===----------------------------------------------------------------------===//

#include "GraphFuzz.h"

#include "graph/GraphBuilder.h"
#include "ops/OpSchema.h"

#include <gtest/gtest.h>

#include <set>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

/// Seed count of the main differential sweep (acceptance floor is 200).
constexpr int NumSweepSeeds = 220;

uint64_t sweepSeed(int Index) {
  return static_cast<uint64_t>(Index) * 2654435761u + 101;
}

//===----------------------------------------------------------------------===//
// Generator self-tests
//===----------------------------------------------------------------------===//

TEST(GraphFuzzGenerator, DeterministicForSeed) {
  for (uint64_t Seed : {1ull, 42ull, 999ull}) {
    FuzzSpec A = generateSpec(Seed);
    FuzzSpec B = generateSpec(Seed);
    ASSERT_EQ(A.Nodes.size(), B.Nodes.size());
    for (size_t I = 0; I < A.Nodes.size(); ++I) {
      EXPECT_EQ(A.Nodes[I].Kind, B.Nodes[I].Kind);
      EXPECT_EQ(A.Nodes[I].Inputs, B.Nodes[I].Inputs);
      EXPECT_EQ(A.Nodes[I].OutShape, B.Nodes[I].OutShape);
      EXPECT_EQ(A.Nodes[I].IsOutput, B.Nodes[I].IsOutput);
    }
    // The materialized graphs (weights included) match bit-for-bit, so a
    // seed alone is a complete repro.
    EXPECT_EQ(buildGraph(A).toString(), buildGraph(B).toString());
  }
}

TEST(GraphFuzzGenerator, GraphsVerifyAndStayBounded) {
  FuzzConfig Cfg;
  for (int I = 0; I < 50; ++I) {
    FuzzSpec Spec = generateSpec(sweepSeed(I), Cfg);
    EXPECT_GE(Spec.numOps(), 1) << "seed " << sweepSeed(I);
    EXPECT_GE(Spec.numOutputs(), 1) << "seed " << sweepSeed(I);
    Graph G = buildGraph(Spec);
    G.verify();
    for (int Id = 0; Id < G.numNodes(); ++Id)
      EXPECT_LE(G.node(Id).OutShape.numElements(), Cfg.MaxElementsPerNode)
          << "seed " << sweepSeed(I) << " node " << Id;
  }
}

TEST(GraphFuzzGenerator, CoversAllOpKindsAcrossSweep) {
  std::set<int> Seen;
  for (int I = 0; I < NumSweepSeeds; ++I) {
    FuzzSpec Spec = generateSpec(sweepSeed(I));
    for (const FuzzNode &N : Spec.Nodes)
      Seen.insert(static_cast<int>(N.Kind));
  }
  std::vector<std::string> Missing;
  for (int K = 0; K < NumOpKinds; ++K)
    if (!Seen.count(K))
      Missing.push_back(opKindName(opKindFromIndex(K)));
  EXPECT_TRUE(Missing.empty())
      << "operator kinds never generated across " << NumSweepSeeds
      << " seeds:" << [&] {
           std::string S;
           for (const std::string &M : Missing)
             S += " " + M;
           return S;
         }();
}

TEST(GraphFuzzGenerator, BuilderCodeIsPrintable) {
  FuzzSpec Spec = generateSpec(7);
  std::string Code = toBuilderCode(Spec);
  EXPECT_NE(Code.find("GraphBuilder B(7);"), std::string::npos);
  EXPECT_NE(Code.find("B.input("), std::string::npos);
  EXPECT_NE(Code.find("B.markOutput("), std::string::npos);
  // Every node appears as a declaration.
  for (size_t I = 0; I < Spec.Nodes.size(); ++I)
    EXPECT_NE(Code.find("N" + std::to_string(I) + " "), std::string::npos)
        << Code;
}

//===----------------------------------------------------------------------===//
// Shrinker self-tests
//===----------------------------------------------------------------------===//

/// Hand-built 12-node spec with a Softmax buried mid-chain surrounded by
/// irrelevant structure on both sides plus a second, unrelated output.
FuzzSpec buriedSoftmaxSpec() {
  FuzzSpec S;
  S.Seed = 1234;
  auto Leaf = [&](OpKind K, Shape Sh) {
    FuzzNode N;
    N.Kind = K;
    N.LeafShape = Sh;
    N.OutShape = std::move(Sh);
    S.Nodes.push_back(std::move(N));
    return static_cast<int>(S.Nodes.size()) - 1;
  };
  auto Op = [&](OpKind K, std::vector<int> In, AttrMap A = {}) {
    FuzzNode N;
    N.Kind = K;
    std::vector<Shape> InShapes;
    for (int I : In)
      InShapes.push_back(S.Nodes[static_cast<size_t>(I)].OutShape);
    N.OutShape = inferShape(K, A, InShapes);
    N.Inputs = std::move(In);
    N.Attrs = std::move(A);
    S.Nodes.push_back(std::move(N));
    return static_cast<int>(S.Nodes.size()) - 1;
  };
  int X = Leaf(OpKind::Input, Shape({2, 4, 6}));
  int Y = Leaf(OpKind::Input, Shape({2, 4, 6}));
  int A = Op(OpKind::Relu, {X});
  int B = Op(OpKind::Add, {A, Y});
  int C = Op(OpKind::Tanh, {B});
  int D = Op(OpKind::Softmax, {C}, AttrMap().set("axis", int64_t(-1)));
  int E = Op(OpKind::Sigmoid, {D});
  int F = Op(OpKind::Mul, {E, Y});
  S.Nodes[static_cast<size_t>(Op(OpKind::Abs, {F}))].IsOutput = true;
  // Unrelated second output chain.
  int U = Op(OpKind::Neg, {X});
  S.Nodes[static_cast<size_t>(Op(OpKind::Exp, {Op(OpKind::Tanh, {U})}))]
      .IsOutput = true;
  return S;
}

TEST(GraphFuzzShrinker, MinimizesAroundSyntheticPredicate) {
  FuzzSpec Spec = buriedSoftmaxSpec();
  ASSERT_TRUE(Spec.contains(OpKind::Softmax));
  int Before = Spec.numOps();

  FailPredicate HasSoftmax = [](const FuzzSpec &S) {
    return S.contains(OpKind::Softmax);
  };
  FuzzSpec Min = shrinkSpec(Spec, HasSoftmax);

  // The witness survives, everything irrelevant dies: the unrelated output
  // chain, the post-Softmax tail, and the pre-Softmax cone.
  EXPECT_TRUE(Min.contains(OpKind::Softmax));
  EXPECT_EQ(Min.numOutputs(), 1);
  EXPECT_LT(Min.numOps(), Before);
  EXPECT_LE(Min.numOps(), 2) << toBuilderCode(Min);
  // Minimal specs still build and verify.
  buildGraph(Min).verify();
}

TEST(GraphFuzzShrinker, PreservesFailureWhenNothingCanShrink) {
  // A single-op graph under an always-true predicate shrinks to itself.
  FuzzSpec Spec;
  Spec.Seed = 5;
  FuzzNode In;
  In.Kind = OpKind::Input;
  In.LeafShape = Shape({2, 2});
  In.OutShape = Shape({2, 2});
  Spec.Nodes.push_back(In);
  FuzzNode Op;
  Op.Kind = OpKind::Relu;
  Op.Inputs = {0};
  Op.OutShape = Shape({2, 2});
  Op.IsOutput = true;
  Spec.Nodes.push_back(Op);

  FuzzSpec Min = shrinkSpec(Spec, [](const FuzzSpec &) { return true; });
  EXPECT_EQ(Min.numOps(), 1);
  EXPECT_EQ(Min.numOutputs(), 1);
}

TEST(GraphFuzzShrinker, RejectsCandidatesThatStopFailing) {
  // Predicate pins the exact node count: no reduction may be accepted.
  FuzzSpec Spec = buriedSoftmaxSpec();
  size_t N = Spec.Nodes.size();
  FuzzSpec Min = shrinkSpec(
      Spec, [N](const FuzzSpec &S) { return S.Nodes.size() == N; });
  EXPECT_EQ(Min.Nodes.size(), N);
}

//===----------------------------------------------------------------------===//
// Differential harness self-tests
//===----------------------------------------------------------------------===//

TEST(GraphFuzzDifferential, ConfigMatrixSpansTheOptimizationSpace) {
  const std::vector<DiffConfig> &M = defaultConfigMatrix();
  ASSERT_GE(M.size(), 3u);
  bool AnyFusionOff = false, AnyRewriteOff = false, AnyFullOn = false;
  for (const DiffConfig &C : M) {
    AnyFusionOff |= !C.Options.EnableFusion;
    AnyRewriteOff |= !C.Options.EnableGraphRewriting;
    AnyFullOn |= C.Options.EnableFusion && C.Options.EnableGraphRewriting &&
                 C.Options.EnableOtherOpts;
  }
  EXPECT_TRUE(AnyFusionOff);
  EXPECT_TRUE(AnyRewriteOff);
  EXPECT_TRUE(AnyFullOn);
}

TEST(GraphFuzzDifferential, ReportsInjectedDivergence) {
  // Sanity-check the failure path end-to-end: against an impossible
  // tolerance, even a matching pipeline "diverges", the shrinker runs, and
  // the report carries GraphBuilder code.
  FuzzSpec Spec = generateSpec(3);
  std::optional<DiffFailure> F =
      runDifferential(Spec, defaultConfigMatrix(), 0.0f, -1.0f);
  ASSERT_TRUE(F.has_value());
  EXPECT_FALSE(F->Config.empty());
  EXPECT_NE(F->Message.find("diverges"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The sweep
//===----------------------------------------------------------------------===//

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, OptimizedMatchesReferenceUnderAllConfigs) {
  std::string Report = fuzzOneSeed(sweepSeed(GetParam()),
                                   defaultConfigMatrix());
  EXPECT_TRUE(Report.empty()) << Report;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialFuzz,
                         ::testing::Range(0, NumSweepSeeds));

//===----------------------------------------------------------------------===//
// The malformed-request dimension
//===----------------------------------------------------------------------===//

/// Every fuzzed model must reject corrupted requests (wrong arity, shape,
/// dtype, null tensor, unknown name) with a clean Status — an abort here
/// kills the test binary, which is exactly what this sweep guards against.
class MalformedRequestFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MalformedRequestFuzz, RequestsAreRejectedNeverAborted) {
  std::string Report =
      fuzzMalformedRequests(generateSpec(sweepSeed(GetParam())));
  EXPECT_TRUE(Report.empty()) << Report;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MalformedRequestFuzz,
                         ::testing::Range(0, 60));

//===----------------------------------------------------------------------===//
// The serialization dimension
//===----------------------------------------------------------------------===//

/// Every fuzzed graph must round-trip through the binary and text
/// serializers exactly, its compiled artifact must restore to a
/// bit-identical executable, and a seed-derived corruption sweep over the
/// serialized blob must reject with a Status on every sample — an abort
/// kills the binary, which is the detector.
class SerializeRoundtripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRoundtripFuzz, ArtifactsRoundtripAndCorruptionRejects) {
  std::string Report =
      fuzzSerializeRoundtrip(generateSpec(sweepSeed(GetParam())));
  EXPECT_TRUE(Report.empty()) << Report;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerializeRoundtripFuzz,
                         ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// The fault-injection dimension
//===----------------------------------------------------------------------===//

/// Every fuzzed model must survive each known fault point firing
/// intermittently through compile (via the on-disk cache) and serving:
/// typed Status or success from every call, no context leaks, healthy
/// again once the fault clears. An abort or deadlock kills/hangs this
/// binary, which is the detector.
class FaultInjectionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultInjectionFuzz, FaultsSurfaceTypedAndClear) {
  std::string Report =
      fuzzFaultInjection(generateSpec(sweepSeed(GetParam())));
  EXPECT_TRUE(Report.empty()) << Report;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultInjectionFuzz, ::testing::Range(0, 12));

} // namespace
