//===- tests/test_profiler_tuner.cpp - profile DB, oracle, GA tuner -----------------===//

#include "graph/GraphBuilder.h"
#include "profiler/ProfilingOracle.h"
#include "tuning/AutoTuner.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dnnfusion;

namespace {

TEST(ProfileDb, RecordLookupAndCounters) {
  ProfileDb Db;
  double V = 0;
  EXPECT_FALSE(Db.lookup("sig", V));
  Db.record("sig", 1.25);
  ASSERT_TRUE(Db.lookup("sig", V));
  EXPECT_EQ(V, 1.25);
  EXPECT_EQ(Db.hits(), 1);
  EXPECT_EQ(Db.misses(), 1);
  EXPECT_EQ(Db.size(), 1);
}

TEST(ProfileDb, PersistenceRoundTrip) {
  std::string Path = "/tmp/dnnf_profiledb_test.txt";
  ProfileDb Db;
  Db.record("Conv[1x8x4x4]+Relu[1x8x4x4]", 0.125);
  Db.record("MatMul[4x4]", 2.5);
  ASSERT_TRUE(Db.store(Path));
  ProfileDb Loaded;
  ASSERT_TRUE(Loaded.load(Path));
  double V = 0;
  ASSERT_TRUE(Loaded.lookup("MatMul[4x4]", V));
  EXPECT_EQ(V, 2.5);
  EXPECT_EQ(Loaded.size(), 2);
  std::remove(Path.c_str());
}

TEST(ProfilingOracle, MeasuresAndThenHitsTheDatabase) {
  GraphBuilder B(1);
  NodeId X = B.input(Shape({32, 32}));
  NodeId A = B.relu(X);
  NodeId C = B.sigmoid(A);
  B.markOutput(C);
  const Graph &G = B.graph();

  ProfileDb Db;
  ProfilingOracle Oracle(Db, /*Repeats=*/2);
  double First = Oracle.blockLatencyMs(G, {A, C});
  EXPECT_GT(First, 0.0);
  EXPECT_EQ(Db.size(), 1);
  int MissesAfterFirst = Db.misses();
  double Second = Oracle.blockLatencyMs(G, {A, C});
  EXPECT_EQ(Second, First);           // Cached value returned verbatim.
  EXPECT_EQ(Db.misses(), MissesAfterFirst); // No re-measurement.
}

TEST(ProfilingOracle, MeasuredBlockWithHeavyOpRuns) {
  GraphBuilder B(2);
  NodeId X = B.input(Shape({8, 16}));
  NodeId M = B.op(OpKind::MatMul, {X, B.weight(Shape({16, 8}))});
  NodeId R = B.relu(M);
  B.markOutput(R);
  ProfileDb Db;
  ProfilingOracle Oracle(Db);
  EXPECT_GT(Oracle.blockLatencyMs(B.graph(), {M, R}), 0.0);
}

TEST(AutoTuner, FindsConfigNoWorseThanBaseline) {
  TuneOptions Opt;
  Opt.Population = 6;
  Opt.Generations = 3;
  TuneResult R = tuneMatmul(64, 64, 64, Opt);
  EXPECT_GT(R.Evaluations, Opt.Population);
  // The default config is in the initial population, so the winner can
  // never be slower (modulo timing noise, hence the 25% slack).
  EXPECT_LE(R.BestMs, R.BaselineMs * 1.25);
  EXPECT_GT(R.WallMs, 0.0);
}

TEST(AutoTuner, DeterministicSearchTrajectory) {
  TuneOptions Opt;
  Opt.Population = 4;
  Opt.Generations = 2;
  Opt.Seed = 99;
  TuneResult A = tuneMatmul(32, 32, 32, Opt);
  TuneResult B = tuneMatmul(32, 32, 32, Opt);
  // Timing differs run to run, but the sampled configurations do not.
  EXPECT_EQ(A.Evaluations, B.Evaluations);
}

} // namespace
