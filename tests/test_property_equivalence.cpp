//===- tests/test_property_equivalence.cpp - fused == unfused, at random -----------===//
//
// The repository's central property: for ANY graph, the fully optimized
// pipeline (rewriting + fusion + code generation + all other passes) must
// produce the same outputs as the unoptimized per-operator reference
// execution. A seeded generator samples random DAGs from the operator
// vocabulary (elementwise, broadcast, data movement, reductions, matmul,
// conv, concat) and the sweep runs the equivalence check per seed.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include "graph/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

/// Samples a random valid graph. Shapes stay small; domains stay safe
/// (positive inputs; no Log/Sqrt on arbitrary intermediate signs).
Graph randomGraph(uint64_t Seed) {
  Rng R(Seed);
  GraphBuilder B(Seed * 31 + 7);
  std::vector<NodeId> Pool;
  Pool.push_back(B.input(Shape({2, 4, 6})));
  if (R.nextBool(0.5f))
    Pool.push_back(B.input(Shape({2, 4, 6})));

  auto Pick = [&] { return Pool[R.nextBelow(Pool.size())]; };
  auto PickWithShape = [&](const Shape &S) -> NodeId {
    for (int Tries = 0; Tries < 20; ++Tries) {
      NodeId Id = Pick();
      if (B.graph().node(Id).OutShape == S)
        return Id;
    }
    return InvalidNodeId;
  };

  int Ops = static_cast<int>(R.nextInRange(8, 26));
  for (int I = 0; I < Ops; ++I) {
    NodeId X = Pick();
    const Shape &S = B.graph().node(X).OutShape;
    switch (R.nextBelow(10)) {
    case 0: { // Unary elementwise (domain-safe subset).
      static const OpKind Unaries[] = {OpKind::Relu,    OpKind::Sigmoid,
                                       OpKind::Tanh,    OpKind::Abs,
                                       OpKind::Square,  OpKind::Neg,
                                       OpKind::Erf,     OpKind::Softplus,
                                       OpKind::Exp,     OpKind::Identity};
      OpKind K = Unaries[R.nextBelow(10)];
      // Exp explodes on deep chains; tame it with a preceding Tanh.
      if (K == OpKind::Exp)
        X = B.tanhOp(X);
      Pool.push_back(B.unary(K, X));
      break;
    }
    case 1: { // Binary, same shape when available.
      NodeId Y = PickWithShape(S);
      if (Y == InvalidNodeId)
        Y = X;
      static const OpKind Binaries[] = {OpKind::Add, OpKind::Sub, OpKind::Mul,
                                        OpKind::Maximum, OpKind::Minimum};
      Pool.push_back(B.binary(Binaries[R.nextBelow(5)], X, Y));
      break;
    }
    case 2: { // Broadcast binary against a small constant.
      Shape Small = R.nextBool() ? Shape({1}) : Shape({S.dim(S.rank() - 1)});
      Pool.push_back(B.binary(R.nextBool() ? OpKind::Add : OpKind::Mul, X,
                              B.weight(Small)));
      break;
    }
    case 3: { // Transpose (random permutation of a small rank).
      std::vector<int64_t> Perm(static_cast<size_t>(S.rank()));
      for (size_t D = 0; D < Perm.size(); ++D)
        Perm[D] = static_cast<int64_t>(D);
      for (size_t D = Perm.size(); D > 1; --D)
        std::swap(Perm[D - 1], Perm[R.nextBelow(D)]);
      Pool.push_back(B.transpose(X, Perm));
      break;
    }
    case 4: // Reshape to a flat 2-D view.
      Pool.push_back(B.reshape(X, {S.numElements() / S.dim(S.rank() - 1),
                                   S.dim(S.rank() - 1)}));
      break;
    case 5: { // Slice along the last axis.
      int64_t Last = S.dim(S.rank() - 1);
      if (Last < 2)
        break;
      int64_t Cut = R.nextInRange(1, Last - 1);
      Pool.push_back(B.op(OpKind::Slice, {X},
                          AttrMap()
                              .set("starts", std::vector<int64_t>{0})
                              .set("ends", std::vector<int64_t>{Cut})
                              .set("axes", std::vector<int64_t>{-1})));
      break;
    }
    case 6: { // Reduction along a random axis.
      AttrMap A;
      A.set("axes",
            std::vector<int64_t>{R.nextInRange(0, S.rank() - 1)});
      A.set("keepdims", int64_t(1));
      static const OpKind Reduces[] = {OpKind::ReduceSum, OpKind::ReduceMean,
                                       OpKind::ReduceMax};
      Pool.push_back(B.op(Reduces[R.nextBelow(3)], {X}, A));
      break;
    }
    case 7: { // MatMul against a fresh weight on the last axis.
      int64_t K = S.dim(S.rank() - 1);
      Pool.push_back(
          B.op(OpKind::MatMul, {X, B.weight(Shape({K, R.nextInRange(2, 6)}))}));
      break;
    }
    case 8: { // Concat with itself along the last axis.
      Pool.push_back(B.concat({X, X}, S.rank() - 1));
      break;
    }
    case 9: { // Softmax over the last axis.
      Pool.push_back(B.softmax(X, -1));
      break;
    }
    }
  }
  // Mark a couple of leaves (values without consumers) as outputs.
  auto Consumers = B.graph().computeConsumers();
  int Marked = 0;
  for (NodeId Id : Pool)
    if (Consumers[static_cast<size_t>(Id)].empty() &&
        B.graph().node(Id).Kind != OpKind::Input && Marked++ < 3)
      B.markOutput(Id);
  if (Marked == 0)
    B.markOutput(Pool.back());
  Graph G = B.take();
  G.verify();
  return G;
}

class FusedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FusedEquivalence, OptimizedMatchesReferenceOnRandomGraphs) {
  Graph G = randomGraph(static_cast<uint64_t>(GetParam()) * 1237 + 17);
  expectOptimizedMatchesReference(G, 5000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedEquivalence, ::testing::Range(0, 40));

class FusedEquivalenceNoRewrite : public ::testing::TestWithParam<int> {};

TEST_P(FusedEquivalenceNoRewrite, FusionAloneMatchesReference) {
  Graph G = randomGraph(static_cast<uint64_t>(GetParam()) * 733 + 3);
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  expectOptimizedMatchesReference(G, 6000 + GetParam(), Opt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedEquivalenceNoRewrite,
                         ::testing::Range(0, 15));

class RewriteOnlyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RewriteOnlyEquivalence, RewritingAloneMatchesReference) {
  Graph G = randomGraph(static_cast<uint64_t>(GetParam()) * 911 + 29);
  CompileOptions Opt;
  Opt.EnableFusion = false;
  Opt.EnableOtherOpts = false;
  expectOptimizedMatchesReference(G, 7000 + GetParam(), Opt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RewriteOnlyEquivalence,
                         ::testing::Range(0, 15));

class MatrixEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MatrixEquivalence, AllMatrixConfigsMatchReference) {
  // The full differential matrix (includes the no-other-opts configuration
  // the dedicated sweeps above do not cover).
  Graph G = randomGraph(static_cast<uint64_t>(GetParam()) * 509 + 71);
  expectMatchesReferenceUnderMatrix(G, 8000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatrixEquivalence, ::testing::Range(0, 10));

} // namespace
