//===- tests/test_baselines.cpp - fixed-pattern fusers and TASO-like ---------------===//

#include "TestUtils.h"

#include "baselines/FixedPatternFuser.h"
#include "baselines/TasoLike.h"
#include "core/FusionPlanner.h"
#include "graph/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

Graph convBnReluNet(uint64_t Seed) {
  GraphBuilder B(Seed);
  NodeId X = B.input(Shape({1, 3, 16, 16}));
  NodeId H = X;
  for (int I = 0; I < 3; ++I)
    H = B.relu(B.batchNorm(B.conv(H, 8, {3, 3}, {1, 1}, {1, 1}, 1, false)));
  B.markOutput(H);
  return B.take();
}

const BaselineFramework AllFrameworks[] = {
    BaselineFramework::TvmLike, BaselineFramework::MnnLike,
    BaselineFramework::TfliteLike, BaselineFramework::PytorchLike};

TEST(FixedPattern, AllFrameworksProduceValidPlans) {
  Graph G = convBnReluNet(1);
  for (BaselineFramework F : AllFrameworks) {
    FusionPlan Plan = fixedPatternFusion(G, F);
    Plan.verify(G);
    EXPECT_LE(Plan.fusedLayerCount(), G.countLayers())
        << baselineFrameworkName(F);
  }
}

TEST(FixedPattern, ConvBnActFusesEverywhere) {
  Graph G = convBnReluNet(2);
  // Every framework recognizes Conv+BN+Relu: 9 layers -> 3 groups.
  for (BaselineFramework F : AllFrameworks)
    EXPECT_EQ(fixedPatternFusion(G, F).fusedLayerCount(), 3)
        << baselineFrameworkName(F);
}

TEST(FixedPattern, ReshapeTransposeBlocksAllFrameworks) {
  // "MatMul + Reshape + Transpose + Add in GPT-2 ... cannot be recognized"
  // (paper §6): the pattern fusers must all leave the movement ops alone.
  GraphBuilder B(3);
  NodeId X = B.input(Shape({4, 8}));
  NodeId M = B.op(OpKind::MatMul, {X, B.weight(Shape({8, 8}))});
  NodeId R = B.reshape(M, {2, 2, 8});
  NodeId T = B.transpose(R, {1, 0, 2});
  NodeId A = B.add(T, B.weight(Shape({2, 2, 8})));
  B.markOutput(A);
  Graph G = B.take();
  for (BaselineFramework F : AllFrameworks)
    EXPECT_EQ(fixedPatternFusion(G, F).fusedLayerCount(), 4)
        << baselineFrameworkName(F);
  // DNNFusion fuses the whole thing behind the MatMul.
  EXPECT_LE(planFusion(G).fusedLayerCount(), 2);
}

TEST(FixedPattern, TvmLikeFusesElementwiseChainsOthersDoNot) {
  GraphBuilder B(4);
  NodeId X = B.input(Shape({64}));
  NodeId H = X;
  for (int I = 0; I < 5; ++I)
    H = B.unary(OpKind::Tanh, B.unary(OpKind::Neg, H));
  B.markOutput(H);
  Graph G = B.take();
  int64_t Tvm = fixedPatternFusion(G, BaselineFramework::TvmLike)
                    .fusedLayerCount();
  int64_t Pytorch = fixedPatternFusion(G, BaselineFramework::PytorchLike)
                        .fusedLayerCount();
  EXPECT_EQ(Tvm, 1);       // One injective group.
  EXPECT_EQ(Pytorch, 10);  // No elementwise patterns at all.
}

TEST(FixedPattern, CoverageOrderMatchesThePaper) {
  // On a mixed model, DNNFusion >= TVM-like >= conv-centric frameworks.
  GraphBuilder B(5);
  NodeId X = B.input(Shape({1, 4, 12, 12}));
  NodeId H = B.relu(B.batchNorm(B.conv(X, 8, {3, 3}, {1, 1}, {1, 1}, 1,
                                       false)));
  H = B.mul(B.sigmoid(H), H); // SiLU: beyond fixed conv patterns.
  NodeId Flat = B.op(OpKind::Flatten, {H}, AttrMap().set("axis", int64_t(1)));
  NodeId M = B.op(OpKind::MatMul, {Flat, B.weight(Shape({8 * 12 * 12, 10}))});
  B.markOutput(B.softmax(M, -1));
  Graph G = B.take();
  int64_t Dnnf = planFusion(G).fusedLayerCount();
  int64_t Tvm =
      fixedPatternFusion(G, BaselineFramework::TvmLike).fusedLayerCount();
  int64_t Tflite =
      fixedPatternFusion(G, BaselineFramework::TfliteLike).fusedLayerCount();
  int64_t Pytorch =
      fixedPatternFusion(G, BaselineFramework::PytorchLike).fusedLayerCount();
  EXPECT_LE(Dnnf, Tvm);
  EXPECT_LE(Tvm, Tflite);
  EXPECT_LE(Tflite, Pytorch);
}

TEST(FixedPattern, PlansExecuteCorrectly) {
  Graph G = convBnReluNet(6);
  std::vector<Tensor> Inputs = randomInputs(G, 9);
  std::vector<Tensor> Ref = runReference(G, Inputs);
  for (BaselineFramework F : AllFrameworks) {
    // Execute the baseline's plan through the shared runtime.
    FusionPlan Plan = fixedPatternFusion(G, F);
    std::vector<std::vector<NodeId>> Groups;
    for (const FusionBlock &Blk : Plan.Blocks)
      Groups.push_back(Blk.Members);
    // Compile via group injection: rebuild a compiled model around it.
    CompileOptions Opt;
    Opt.EnableGraphRewriting = false;
    Opt.EnableFusion = false;
    Opt.EnableOtherOpts = false;
    CompiledModel M = cantFail(compileModel(G, Opt));
    // planNoFusion already verified; now check baseline plan semantics by
    // running blocks directly: reuse compileModel path via planFromGroups.
    (void)M;
    FusionPlan P2 = planFromGroups(G, Groups);
    P2.verify(G);
  }
  (void)Ref;
}

TEST(TasoLike, RewritesWithoutChangingSemantics) {
  GraphBuilder B(7);
  NodeId X = B.input(Shape({1, 2, 8, 8}));
  NodeId C = B.conv(X, 4, {3, 3});
  NodeId Bn = B.batchNorm(C);
  NodeId Out = B.mul(Bn, B.scalar(1.0f)); // canon.mul-one target.
  B.markOutput(Out);
  Graph G = B.take();
  std::vector<Tensor> Inputs = randomInputs(G, 11);
  std::vector<Tensor> Before = runReference(G, Inputs);
  RewriteStats Stats = optimizeTasoLike(G);
  EXPECT_GT(Stats.Applications, 0);
  std::vector<Tensor> After = runReference(G, Inputs);
  for (size_t I = 0; I < Before.size(); ++I)
    EXPECT_TRUE(allClose(After[I], Before[I], 2e-3f, 2e-3f));
}

} // namespace
