//===- tests/test_models.cpp - model zoo integration tests -------------------------===//

#include "TestUtils.h"

#include "models/ModelZoo.h"
#include "ops/OpSchema.h"

#include <gtest/gtest.h>

using namespace dnnfusion;
using namespace dnnfusion::testutil;

namespace {

class ZooModel : public ::testing::TestWithParam<int> {};

TEST_P(ZooModel, BuildsVerifiesAndHasSensibleStructure) {
  const ModelZooEntry &E =
      modelZoo()[static_cast<size_t>(GetParam())];
  Graph G = E.Build();
  G.verify();
  EXPECT_GT(G.countLayers(), 0) << E.Info.Name;
  EXPECT_GT(G.countComputeIntensiveLayers(), 0) << E.Info.Name;
  EXPECT_GT(G.totalFlops(), 0) << E.Info.Name;
  EXPECT_FALSE(G.outputs().empty()) << E.Info.Name;
  // Scaled-down builders must stay in the paper's order of magnitude
  // (EXPERIMENTS.md documents the exact deltas).
  EXPECT_GT(G.countLayers(), E.Info.PaperTotalLayers / 5) << E.Info.Name;
}

INSTANTIATE_TEST_SUITE_P(
    All, ZooModel, ::testing::Range(0, 15),
    [](const ::testing::TestParamInfo<int> &Info) {
      std::string Name =
          modelZoo()[static_cast<size_t>(Info.param)].Info.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(ZooModels, BuildersAreDeterministic) {
  Graph A = buildVgg16();
  Graph B = buildVgg16();
  EXPECT_EQ(A.toString(), B.toString());
}

TEST(ZooModels, TransformerFamilyDepthOrdering) {
  EXPECT_LT(buildTinyBert().countLayers(), buildDistilBert().countLayers());
  EXPECT_LT(buildDistilBert().countLayers(), buildBertBase().countLayers());
  EXPECT_LT(buildBertBase().countLayers(), buildMobileBert().countLayers());
}

TEST(ZooModels, RcnnModelsAreMemoryIntensiveLayerDominated) {
  // The paper's Table 5 point: R-CNN depth comes from MILs, not convs.
  Graph G = buildFasterRcnn();
  int64_t Cil = G.countComputeIntensiveLayers();
  int64_t Total = G.countLayers();
  EXPECT_GT(Total - Cil, 5 * Cil);
}

// End-to-end numerical equivalence for the cheapest model of each family
// (the full sweep lives in the benches; tests keep runtime bounded).
TEST(ZooEndToEnd, Vgg16OptimizedMatchesReference) {
  expectOptimizedMatchesReference(buildVgg16(), 1, CompileOptions(), 5e-3f,
                                  5e-3f);
}

TEST(ZooEndToEnd, TinyBertOptimizedMatchesReference) {
  expectOptimizedMatchesReference(buildTinyBert(), 2, CompileOptions(), 5e-3f,
                                  5e-3f);
}

TEST(ZooEndToEnd, C3dOptimizedMatchesReference) {
  expectOptimizedMatchesReference(buildC3d(), 3, CompileOptions(), 5e-3f,
                                  5e-3f);
}

TEST(ZooEndToEnd, MobileNetSsdOptimizedMatchesReference) {
  expectOptimizedMatchesReference(buildMobileNetV1Ssd(), 4, CompileOptions(),
                                  5e-3f, 5e-3f);
}

TEST(ZooModels, UnknownNameAborts) {
  EXPECT_DEATH(buildModel("NoSuchNet"), "unknown model");
}

} // namespace
