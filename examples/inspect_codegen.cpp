//===- examples/inspect_codegen.cpp - look at what the code generator built ---------===//
//
// Renders the C++ source of fused kernels (paper §4.4's code generation)
// and demonstrates the fused-operator cache: once a fused operator is
// generated, identical structures — in this model or the next — reuse it.
// Compilation goes through the public facade and its Expected error model;
// CodeEmitter itself is an internal (unstable) interface.
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include "core/CodeEmitter.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace dnnfusion;

int main() {
  // A GEMM + Div + Transpose chain — the paper's own §4.4.1 example of
  // fusing Many-to-Many with One-to-One and Shuffle.
  GraphBuilder B(5);
  NodeId X = B.input(Shape({8, 16}), "x");
  NodeId W = B.weight(Shape({16, 8}));
  NodeId M = B.op(OpKind::MatMul, {X, W});
  NodeId D = B.div(M, B.scalar(8.0f));
  NodeId T = B.transpose(D, {1, 0});
  B.markOutput(T);

  Expected<CompiledModel> Compiled = compileModel(B.take(), CompileOptions());
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n",
                 Compiled.status().toString().c_str());
    return 1;
  }
  CompiledModel Model = Compiled.takeValue();
  std::printf("fusion plan:\n%s\n", Model.Plan.toString(Model.G).c_str());

  FusedOpCache Cache;
  for (size_t I = 0; I < Model.Blocks.size(); ++I) {
    std::string Sig = blockSignature(Model.G, Model.Plan.Blocks[I]);
    bool Hit = Cache.lookupOrInsert(Sig);
    std::string Name = formatString("fused_kernel_%zu", I);
    std::printf("---- block %zu (%s, cache %s) ----\n%s\n", I, Sig.c_str(),
                Hit ? "hit" : "miss",
                emitBlockSource(Model.G, Model.Blocks[I], Name).c_str());
  }

  // Compile a second, structurally identical model: every kernel is a
  // cache hit ("once a new operator is generated, it can be used for both
  // the current model and future models", paper §4.4.1).
  GraphBuilder B2(99); // Different weights, same structure.
  NodeId X2 = B2.input(Shape({8, 16}), "x");
  NodeId W2 = B2.weight(Shape({16, 8}));
  NodeId T2 = B2.transpose(B2.div(B2.op(OpKind::MatMul, {X2, W2}),
                                  B2.scalar(8.0f)),
                           {1, 0});
  B2.markOutput(T2);
  Expected<CompiledModel> Compiled2 = compileModel(B2.take(), CompileOptions());
  if (!Compiled2.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n",
                 Compiled2.status().toString().c_str());
    return 1;
  }
  CompiledModel Model2 = Compiled2.takeValue();
  int Hits = 0;
  for (size_t I = 0; I < Model2.Blocks.size(); ++I)
    Hits += Cache.lookupOrInsert(blockSignature(Model2.G,
                                                Model2.Plan.Blocks[I]));
  std::printf("second model with identical structure: %d/%zu fused kernels "
              "served from the cache\n",
              Hits, Model2.Blocks.size());
  return 0;
}
