//===- examples/vision_pipeline.cpp - detection workload walk-through ---------------===//
//
// The mobile-vision workload: YOLO-V4 with Mish activations, SPP, and
// PANet routing. Shows per-framework fusion coverage on one real graph and
// the resulting latency/traffic differences on the shared runtime. Runtime
// entry points come exclusively through the public facade; a compilation
// or inference error exits non-zero instead of aborting.
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include "baselines/FixedPatternFuser.h"
#include "models/ModelZoo.h"
#include "tensor/TensorUtils.h"

#include <cstdio>

using namespace dnnfusion;

int main() {
  Graph G = buildYoloV4();
  std::printf("YOLO-V4: %lld layers (%lld convolutions), %.1f MFLOPs\n\n",
              static_cast<long long>(G.countLayers()),
              static_cast<long long>(G.countComputeIntensiveLayers()),
              static_cast<double>(G.totalFlops()) / 1e6);

  Rng R(9);
  Tensor Image(Shape({1, 3, 64, 64}));
  fillRandom(Image, R);

  bool Failed = false;
  auto Report = [&](const char *Name, Expected<CompiledModel> Model) {
    if (!Model.ok()) {
      std::fprintf(stderr, "%s: compilation failed: %s\n", Name,
                   Model.status().toString().c_str());
      Failed = true;
      return;
    }
    InferenceSession Session(Model.takeValue());
    ExecutionStats Stats;
    Expected<std::vector<Tensor>> Warmup = Session.run({Image});
    if (!Warmup.ok()) {
      std::fprintf(stderr, "%s: warm-up inference failed: %s\n", Name,
                   Warmup.status().toString().c_str());
      Failed = true;
      return;
    }
    Expected<std::vector<Tensor>> Out = Session.run({Image}, &Stats);
    if (!Out.ok()) {
      std::fprintf(stderr, "%s: inference failed: %s\n", Name,
                   Out.status().toString().c_str());
      Failed = true;
      return;
    }
    std::printf("%-14s kernels=%4lld  latency=%7.2f ms  traffic=%6.2f MB  "
                "peak-arena=%5.2f MB\n",
                Name, static_cast<long long>(Stats.KernelLaunches),
                Stats.WallMs,
                static_cast<double>(Stats.MainBytesRead +
                                    Stats.MainBytesWritten) /
                    1048576.0,
                static_cast<double>(Stats.PeakArenaBytes) / 1048576.0);
  };

  for (BaselineFramework F :
       {BaselineFramework::PytorchLike, BaselineFramework::TfliteLike,
        BaselineFramework::MnnLike, BaselineFramework::TvmLike}) {
    Graph Gf = buildYoloV4();
    FusionPlan Plan = fixedPatternFusion(Gf, F);
    Report(baselineFrameworkName(F),
           compileModelWithPlan(std::move(Gf), std::move(Plan)));
  }
  Report("DNNFusion", compileModel(buildYoloV4(), CompileOptions()));
  if (Failed)
    return 1;

  std::printf("\nWhy DNNFusion wins here: Mish (x * tanh(softplus(x))) and "
              "the SPP/PANet Concat+Upsample routing are not in any "
              "framework's pattern list, but classify cleanly under the "
              "mapping-type analysis, so whole activation+routing chains "
              "fuse behind each convolution.\n");
  return 0;
}
