//===- examples/quickstart.cpp - build, compile, serve -----------------------------===//
//
// The five-minute tour, written entirely against the stable public facade
// (<dnnfusion/dnnfusion.h>): build a small graph with GraphBuilder, compile
// it with the full DNNFusion pipeline, inspect the typed model signature,
// serve requests through an InferenceSession, and persist the compiled
// model with saveModel/loadModel (bit-identical execution from disk) —
// with every fallible step checked through the Expected error model (a
// malformed graph, request, or artifact comes back as a Status, never an
// abort).
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include "tensor/TensorUtils.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace dnnfusion;

int main() {
  // 1. Build a computational graph: conv -> batchnorm -> relu -> residual.
  //    One builder recipe serves both compilations below (full pipeline vs
  //    no-fusion baseline) — the graph is consumed by compileModel.
  auto BuildGraph = [] {
    GraphBuilder B(/*Seed=*/42);
    NodeId X = B.input(Shape({1, 3, 32, 32}), "image");
    NodeId Conv = B.conv(X, /*OutChannels=*/8, /*Kernel=*/{3, 3},
                         /*Strides=*/{1, 1}, /*Pads=*/{1, 1});
    NodeId Act = B.relu(B.batchNorm(Conv));
    NodeId Conv2 = B.conv(Act, 8, {3, 3}, {1, 1}, {1, 1});
    B.markOutput(B.relu(B.add(Conv2, Act))); // Residual connection.
    return B.take();
  };
  Graph G = BuildGraph();
  std::printf("graph: %lld operator layers, %.2f MFLOPs\n",
              static_cast<long long>(G.countLayers()),
              static_cast<double>(G.totalFlops()) / 1e6);

  // 2. Compile with the full pipeline: mathematical-property graph
  //    rewriting (Conv+BatchNorm folds into the weights), mapping-type
  //    fusion planning, and fused code generation. Compilation validates
  //    the graph and returns an error Status instead of aborting on a
  //    malformed one.
  Expected<CompiledModel> Model = compileModel(std::move(G), CompileOptions());
  if (!Model.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n",
                 Model.status().toString().c_str());
    return 1;
  }
  std::printf("after compilation: %lld fused kernels (rewriting applied %d "
              "rules)\n",
              static_cast<long long>(Model->kernelLaunches()),
              Model->RewriteInfo.Applications);
  std::printf("model signature:\n%s", Model->Signature.toString().c_str());

  // 3. Serve it. Inputs bind by signature name; a request with a wrong
  //    name, shape, dtype, or arity is rejected with a Status — the
  //    session (and the process) survives.
  InferenceSession Session(Model.takeValue());
  Rng R(7);
  Tensor Image(Shape({1, 3, 32, 32}));
  fillRandom(Image, R);
  ExecutionStats Stats;
  Expected<std::vector<Tensor>> Outputs =
      Session.run({{"image", Image}}, &Stats);
  if (!Outputs.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 Outputs.status().toString().c_str());
    return 1;
  }
  std::printf("ran in %.3f ms: %lld kernel launches, %.2f KB intermediate "
              "traffic, output shape %s\n",
              Stats.WallMs, static_cast<long long>(Stats.KernelLaunches),
              static_cast<double>(Stats.MainBytesRead +
                                  Stats.MainBytesWritten) /
                  1024.0,
              (*Outputs)[0].shape().toString().c_str());

  // What rejection looks like (this is the serving error boundary, not a
  // crash): bind a wrong-shaped image to the same input name.
  Expected<std::vector<Tensor>> Bad =
      Session.run({{"image", Tensor::zeros(Shape({1, 3, 8, 8}))}});
  std::printf("wrong-shape request rejected: %s\n",
              Bad.ok() ? "UNEXPECTEDLY ACCEPTED" : Bad.status().toString().c_str());
  if (Bad.ok())
    return 1;

  // 4. Compare against the no-fusion baseline to see what fusion bought —
  //    same builder recipe, optimizations off.
  CompileOptions Off;
  Off.EnableGraphRewriting = false;
  Off.EnableFusion = false;
  Off.EnableOtherOpts = false;
  Expected<CompiledModel> Baseline = compileModel(BuildGraph(), Off);
  if (!Baseline.ok()) {
    std::fprintf(stderr, "baseline compilation failed: %s\n",
                 Baseline.status().toString().c_str());
    return 1;
  }
  InferenceSession BaselineSession(Baseline.takeValue());
  ExecutionStats S2;
  Expected<std::vector<Tensor>> Ref = BaselineSession.run({Image}, &S2);
  if (!Ref.ok()) {
    std::fprintf(stderr, "baseline inference failed: %s\n",
                 Ref.status().toString().c_str());
    return 1;
  }
  bool Agree = allClose((*Outputs)[0], (*Ref)[0], 1e-3f, 1e-3f);
  std::printf("baseline: %lld launches, %.2f KB traffic; outputs agree: %s\n",
              static_cast<long long>(S2.KernelLaunches),
              static_cast<double>(S2.MainBytesRead + S2.MainBytesWritten) /
                  1024.0,
              Agree ? "yes" : "NO");
  if (!Agree)
    return 1;

  // 5. Persist the compiled model and serve it from disk: saveModel writes
  //    one versioned artifact (graph + fusion plan + schedule + memory
  //    plan), loadModel restores it without re-running planning, and the
  //    loaded model is bit-identical in execution. (For transparent warm
  //    starts, set CompileOptions::CacheDir instead and compileModel does
  //    this keyed on content hash — see examples/save_load_roundtrip.cpp.)
  std::string ArtifactPath =
      "/tmp/dnnf_quickstart_" + std::to_string(getpid()) + ".dnnf";
  if (Status S = saveModel(Session.model(), ArtifactPath); !S.ok()) {
    std::fprintf(stderr, "saveModel failed: %s\n", S.toString().c_str());
    return 1;
  }
  Expected<CompiledModel> Reloaded = loadModel(ArtifactPath);
  std::remove(ArtifactPath.c_str());
  if (!Reloaded.ok()) {
    std::fprintf(stderr, "loadModel failed: %s\n",
                 Reloaded.status().toString().c_str());
    return 1;
  }
  InferenceSession FromDisk(Reloaded.takeValue());
  Expected<std::vector<Tensor>> DiskOut = FromDisk.run({{"image", Image}});
  if (!DiskOut.ok()) {
    std::fprintf(stderr, "inference on the reloaded model failed: %s\n",
                 DiskOut.status().toString().c_str());
    return 1;
  }
  bool BitIdentical =
      std::memcmp((*Outputs)[0].data(), (*DiskOut)[0].data(),
                  (*Outputs)[0].byteSize()) == 0;
  std::printf("save -> load -> run: outputs bit-identical: %s\n",
              BitIdentical ? "yes" : "NO");
  return BitIdentical ? 0 : 1;
}
