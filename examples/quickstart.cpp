//===- examples/quickstart.cpp - build, compile, run -------------------------------===//
//
// The five-minute tour: build a small graph with GraphBuilder, compile it
// with the full DNNFusion pipeline, run it, and inspect what fusion did.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "graph/GraphBuilder.h"
#include "runtime/ExecutionContext.h"
#include "tensor/TensorUtils.h"

#include <cstdio>

using namespace dnnfusion;

int main() {
  // 1. Build a computational graph: conv -> batchnorm -> relu -> residual.
  GraphBuilder B(/*Seed=*/42);
  NodeId X = B.input(Shape({1, 3, 32, 32}), "image");
  NodeId Conv = B.conv(X, /*OutChannels=*/8, /*Kernel=*/{3, 3},
                       /*Strides=*/{1, 1}, /*Pads=*/{1, 1});
  NodeId Act = B.relu(B.batchNorm(Conv));
  NodeId Conv2 = B.conv(Act, 8, {3, 3}, {1, 1}, {1, 1});
  NodeId Out = B.relu(B.add(Conv2, Act)); // Residual connection.
  B.markOutput(Out);
  Graph G = B.take();
  std::printf("graph: %lld operator layers, %.2f MFLOPs\n",
              static_cast<long long>(G.countLayers()),
              static_cast<double>(G.totalFlops()) / 1e6);

  // 2. Compile with the full pipeline: mathematical-property graph
  //    rewriting (Conv+BatchNorm folds into the weights), mapping-type
  //    fusion planning, and fused code generation.
  CompiledModel Model = compileModel(std::move(G), CompileOptions());
  std::printf("after compilation: %lld fused kernels (rewriting applied %d "
              "rules)\n",
              static_cast<long long>(Model.kernelLaunches()),
              Model.RewriteInfo.Applications);

  // 3. Run it.
  Rng R(7);
  Tensor Image(Shape({1, 3, 32, 32}));
  fillRandom(Image, R);
  ExecutionContext E(Model);
  ExecutionStats Stats;
  std::vector<Tensor> Outputs = E.run({Image}, &Stats);
  std::printf("ran in %.3f ms: %lld kernel launches, %.2f KB intermediate "
              "traffic, output shape %s\n",
              Stats.WallMs, static_cast<long long>(Stats.KernelLaunches),
              static_cast<double>(Stats.MainBytesRead +
                                  Stats.MainBytesWritten) /
                  1024.0,
              Outputs[0].shape().toString().c_str());

  // 4. Compare against the no-fusion baseline to see what fusion bought.
  GraphBuilder B2(42);
  NodeId X2 = B2.input(Shape({1, 3, 32, 32}), "image");
  NodeId C2 = B2.conv(X2, 8, {3, 3}, {1, 1}, {1, 1});
  NodeId A2 = B2.relu(B2.batchNorm(C2));
  NodeId C3 = B2.conv(A2, 8, {3, 3}, {1, 1}, {1, 1});
  B2.markOutput(B2.relu(B2.add(C3, A2)));
  CompileOptions Off;
  Off.EnableGraphRewriting = false;
  Off.EnableFusion = false;
  Off.EnableOtherOpts = false;
  CompiledModel Baseline = compileModel(B2.take(), Off);
  ExecutionContext E2(Baseline);
  ExecutionStats S2;
  std::vector<Tensor> Ref = E2.run({Image}, &S2);
  std::printf("baseline: %lld launches, %.2f KB traffic; outputs agree: %s\n",
              static_cast<long long>(S2.KernelLaunches),
              static_cast<double>(S2.MainBytesRead + S2.MainBytesWritten) /
                  1024.0,
              allClose(Outputs[0], Ref[0], 1e-3f, 1e-3f) ? "yes" : "NO");
  return 0;
}
