//===- examples/transformer_inference.cpp - NLP workload walk-through ---------------===//
//
// The workload class the paper's introduction motivates: extremely deep
// transformer exports whose layer count (not FLOPs) limits performance.
// Runs TinyBERT through every pipeline stage and reports what each one
// contributed. Runtime entry points come through the public facade; any
// compile/inference error exits non-zero instead of aborting.
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include "models/ModelZoo.h"
#include "runtime/DeviceModel.h"
#include "tensor/TensorUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dnnfusion;

namespace {

double timeModel(InferenceSession &Session) {
  Rng R(3);
  std::vector<Tensor> Inputs;
  for (const TensorSpec &Spec : Session.signature().Inputs) {
    Tensor T(Spec.Sh);
    fillRandom(T, R, -0.5f, 0.5f);
    Inputs.push_back(std::move(T));
  }
  ExecutionStats Stats;
  if (!Session.run(Inputs, &Stats).ok() ||  // Warm-up.
      !Session.run(Inputs, &Stats).ok()) {
    std::fprintf(stderr, "TinyBERT inference failed\n");
    std::exit(1);
  }
  return Stats.WallMs;
}

} // namespace

int main() {
  Graph G = buildTinyBert();
  std::printf("TinyBERT export: %lld operator layers (%lld compute-"
              "intensive), %.2f MB of intermediate results\n",
              static_cast<long long>(G.countLayers()),
              static_cast<long long>(G.countComputeIntensiveLayers()),
              static_cast<double>(G.intermediateBytes()) / 1048576.0);
  std::printf("note the layer mix: LayerNorm arrives decomposed into "
              "Sub/Square/ReduceMean/Add/Sqrt/Div, GELU into Erf/Mul/Add — "
              "exactly the sequences fixed-pattern fusers cannot cover.\n\n");

  struct Stage {
    const char *Name;
    CompileOptions Opt;
  };
  std::vector<Stage> Stages;
  {
    CompileOptions OurB;
    OurB.EnableGraphRewriting = false;
    OurB.EnableFusion = false;
    OurB.EnableOtherOpts = false;
    Stages.push_back({"no optimization (OurB)", OurB});
    CompileOptions Gr = OurB;
    Gr.EnableGraphRewriting = true;
    Stages.push_back({"+ graph rewriting", Gr});
    CompileOptions Fuse = Gr;
    Fuse.EnableFusion = true;
    Stages.push_back({"+ mapping-type fusion", Fuse});
    Stages.push_back({"+ data-movement folding (full DNNFusion)",
                      CompileOptions()});
  }

  DeviceProfile Gpu = snapdragon865Gpu();
  for (const Stage &S : Stages) {
    Expected<CompiledModel> M = compileModel(buildTinyBert(), S.Opt);
    if (!M.ok()) {
      std::fprintf(stderr, "compilation failed: %s\n",
                   M.status().toString().c_str());
      return 1;
    }
    long long Kernels = M->kernelLaunches();
    double GpuMs = modelLatencyMs(*M, Gpu);
    InferenceSession Session(M.takeValue());
    std::printf("%-42s kernels=%4lld  cpu=%6.2f ms  modeled-mobile-gpu=%6.3f "
                "ms\n",
                S.Name, Kernels, timeModel(Session), GpuMs);
  }
  std::printf("\nThe attention projections (MatMul + bias Add + Reshape + "
              "Transpose) and the LayerNorm tails each collapse into single "
              "fused kernels; Softmax and the attention MatMuls stay "
              "separate (Many-to-Many pairs are red in Table 3).\n");
  return 0;
}
