//===- examples/save_load_roundtrip.cpp - persistence walk-through ------------------===//
//
// Model & plan persistence through the public facade: compile a zoo-scale
// model with the on-disk compilation cache enabled, save the compiled
// artifact, load it back, and verify the loaded model serves bit-identical
// results — then corrupt a copy of the artifact and watch the loader
// reject it with a clean Status (the untrusted-input discipline).
//
//   $ ./save_load_roundtrip                          # self-contained
//   $ ./save_load_roundtrip --cache-dir DIR          # share a cache dir
//   $ ./save_load_roundtrip --cache-dir DIR --expect-cache-hit
//
// The last form is what CI's cache-hit smoke job runs as its second
// invocation: the first process populated DIR, so this process's very
// first compile must come from the cache.
//
// Exit code is the assertion: non-zero on any violated expectation.
//
//===----------------------------------------------------------------------===//

#include <dnnfusion/dnnfusion.h>

#include "models/ModelZoo.h"
#include "tensor/TensorUtils.h"

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <string>
#include <unistd.h>

using namespace dnnfusion;

namespace {

/// Best-effort recursive-less cleanup of the example's scratch directory.
void removeDirectoryFiles(const std::string &Dir) {
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D))
      if (E->d_name[0] != '.')
        std::remove((Dir + "/" + E->d_name).c_str());
    closedir(D);
  }
  rmdir(Dir.c_str());
}

bool bitIdentical(const std::vector<Tensor> &A, const std::vector<Tensor> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!(A[I].shape() == B[I].shape()) ||
        std::memcmp(A[I].data(), B[I].data(), A[I].byteSize()) != 0)
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string CacheDir;
  bool ExpectCacheHit = false;
  bool OwnScratchDir = true;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--cache-dir") == 0 && I + 1 < argc) {
      CacheDir = argv[++I];
      OwnScratchDir = false;
    } else if (std::strcmp(argv[I], "--expect-cache-hit") == 0) {
      ExpectCacheHit = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cache-dir DIR] [--expect-cache-hit]\n",
                   argv[0]);
      return 2;
    }
  }
  if (CacheDir.empty())
    CacheDir = "/tmp/dnnf_roundtrip_" + std::to_string(getpid());

  // 1. Compile with the on-disk compilation cache enabled: the planning
  //    cost (rewrite search, fusion exploration) is paid once per
  //    (graph, options) content, across process restarts.
  CompileOptions Opt;
  Opt.CacheDir = CacheDir;
  Expected<CompiledModel> First = compileModel(buildModel("EfficientNet-B0"), Opt);
  if (!First.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n",
                 First.status().toString().c_str());
    return 1;
  }
  std::printf("first compile: cache %s (dir %s)\n",
              First->CacheHit ? "HIT" : "miss", CacheDir.c_str());
  if (ExpectCacheHit && !First->CacheHit) {
    std::fprintf(stderr, "expected a cache hit and saw a miss\n");
    return 1;
  }

  // 2. The same compile again, same process: must be a hit now.
  Expected<CompiledModel> Second = compileModel(buildModel("EfficientNet-B0"), Opt);
  if (!Second.ok() || !Second->CacheHit) {
    std::fprintf(stderr, "second compile did not hit the cache (%s)\n",
                 Second.ok() ? "miss" : Second.status().toString().c_str());
    return 1;
  }
  std::printf("second compile: cache HIT\n");

  // 3. Explicit save -> load round trip of the compiled artifact.
  std::string ArtifactPath = CacheDir + "/roundtrip-model.dnnf";
  if (Status S = saveModel(*First, ArtifactPath); !S.ok()) {
    std::fprintf(stderr, "saveModel failed: %s\n", S.toString().c_str());
    return 1;
  }
  Expected<CompiledModel> Loaded = loadModel(ArtifactPath);
  if (!Loaded.ok()) {
    std::fprintf(stderr, "loadModel failed: %s\n",
                 Loaded.status().toString().c_str());
    return 1;
  }
  std::printf("saved and reloaded: %lld fused kernels, %lld schedule levels\n",
              static_cast<long long>(Loaded->kernelLaunches()),
              static_cast<long long>(Loaded->Schedule.numLevels()));

  // 4. The loaded model must serve bit-identical results.
  Rng R(7);
  Tensor Image(Loaded->Signature.Inputs[0].Sh);
  fillRandom(Image, R);
  InferenceSession Original(First.takeValue());
  InferenceSession Restored(Loaded.takeValue());
  Expected<std::vector<Tensor>> A = Original.run({Image});
  Expected<std::vector<Tensor>> B = Restored.run({Image});
  if (!A.ok() || !B.ok()) {
    std::fprintf(stderr, "inference failed after reload\n");
    return 1;
  }
  if (!bitIdentical(*A, *B)) {
    std::fprintf(stderr, "loaded model outputs are NOT bit-identical\n");
    return 1;
  }
  std::printf("outputs bit-identical across the save/load boundary\n");

  // 5. Artifacts are untrusted input: a corrupted file must reject with a
  //    Status — the process (your server) survives.
  std::string CorruptPath = CacheDir + "/roundtrip-corrupt.dnnf";
  {
    FILE *In = std::fopen(ArtifactPath.c_str(), "rb");
    FILE *Out = std::fopen(CorruptPath.c_str(), "wb");
    if (!In || !Out)
      return 1;
    std::string Bytes;
    char Chunk[4096];
    size_t N;
    while ((N = std::fread(Chunk, 1, sizeof(Chunk), In)) > 0)
      Bytes.append(Chunk, N);
    Bytes[Bytes.size() / 2] ^= 0x20; // One flipped bit.
    std::fwrite(Bytes.data(), 1, Bytes.size(), Out);
    std::fclose(In);
    std::fclose(Out);
  }
  Expected<CompiledModel> Corrupt = loadModel(CorruptPath);
  std::printf("corrupted artifact: %s\n",
              Corrupt.ok() ? "UNEXPECTEDLY ACCEPTED"
                           : Corrupt.status().toString().c_str());
  std::remove(CorruptPath.c_str());
  std::remove(ArtifactPath.c_str());
  if (Corrupt.ok())
    return 1;

  if (OwnScratchDir)
    removeDirectoryFiles(CacheDir);
  std::printf("roundtrip example passed\n");
  return 0;
}
