#!/usr/bin/env bash
# Emits the machine-readable perf trajectory, uploaded as CI artifacts on
# every run so the numbers accumulate into a history:
#
#   BENCH_e2e.json     — per-model wall latency of the fully optimized
#                        pipeline under sequential vs wavefront dispatch.
#   BENCH_kernels.json — the execution-engine comparison: naive-vs-packed
#                        GEMM/conv per shape class, interpreted-vs-program
#                        DFT evaluation, and the four engine combinations
#                        per zoo model (exits non-zero if any engine pair
#                        diverges — a correctness guard, not a timing one).
#
# Usable locally:
#   ./scripts/bench_json.sh                 # build/ + both JSON files
#   ./scripts/bench_json.sh build-release out.json kernels.json
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_e2e.json}"
KERNELS_OUT="${3:-BENCH_kernels.json}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_fig7_breakdown \
      bench_table6_latency -j "$JOBS"

"$BUILD_DIR/bench_fig7_breakdown" --json "$OUT"
"$BUILD_DIR/bench_table6_latency" --json "$KERNELS_OUT"
echo "Perf trajectory written to $OUT and $KERNELS_OUT"
