#!/usr/bin/env bash
# Emits the end-to-end perf trajectory (BENCH_e2e.json): per-model wall
# latency of the fully optimized pipeline under sequential vs wavefront
# block dispatch. CI uploads the file as an artifact on every run so the
# numbers accumulate into a history; usable locally:
#
#   ./scripts/bench_json.sh                 # build/ + BENCH_e2e.json
#   ./scripts/bench_json.sh build-release out.json
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_e2e.json}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_fig7_breakdown -j "$JOBS"

"$BUILD_DIR/bench_fig7_breakdown" --json "$OUT"
echo "Perf trajectory written to $OUT"
