#!/usr/bin/env bash
# CI entry point: tier-1 verify in Debug and Release, plus the smoke-label
# fast pass. Mirrors what .github/workflows/ci.yml runs; usable locally:
#
#   ./scripts/ci.sh            # both configurations
#   ./scripts/ci.sh Debug      # one configuration
#   ./scripts/ci.sh tsan       # ThreadSanitizer build, smoke subset only
#                              # (guards the wavefront/serving concurrency)
#   ./scripts/ci.sh cache      # compilation-cache smoke: the roundtrip
#                              # example twice against one CacheDir (the
#                              # second process must hit), then the fig9b
#                              # cold/warm sweep into BENCH_fig9b.json
#   ./scripts/ci.sh perf       # perf smoke: kernel + e2e benches in
#                              # Release; fails on crashes or on the
#                              # engine correctness guards (packed vs
#                              # naive, program vs treewalk divergence),
#                              # never on timing
#   ./scripts/ci.sh serving    # serving smoke: the closed-loop load
#                              # generator briefly (--quick) into
#                              # BENCH_serving.json; fails on crashes or
#                              # the batched-vs-solo bit-identity /
#                              # request-accounting guards, never timing
#   ./scripts/ci.sh forced     # forced-dispatch smoke: the smoke suite
#                              # once per bit-exact kernel-registry tier
#                              # via the DNNFUSION_FORCE_KERNEL_LEVEL env
#                              # hook (scalar, then avx2) — unsupported
#                              # tiers clamp down, so this runs anywhere
#   ./scripts/ci.sh chaos      # fault-injection sweep: test_chaos and the
#                              # serving resilience tests in Debug and
#                              # under ThreadSanitizer, then the loadgen
#                              # --chaos storm (degraded-mode p99 into
#                              # BENCH_serving_chaos.json); fails on any
#                              # abort, deadlock, leak, or untyped error
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
CONFIGS=("${@:-Debug}")
if [ "$#" -eq 0 ]; then
  CONFIGS=(Debug Release)
fi

for CONFIG in "${CONFIGS[@]}"; do
  if [ "$CONFIG" = "tsan" ]; then
    BUILD_DIR="build-ci-tsan"
    echo "=== [tsan] configure ==="
    # Examples explicitly ON (a stale build-ci-tsan cache from before this
    # flag would otherwise keep OFF): they are registered as smoke tests,
    # so the public-API walk-throughs also execute under ThreadSanitizer.
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DDNNFUSION_TSAN=ON -DDNNFUSION_BUILD_BENCH=OFF \
          -DDNNFUSION_BUILD_EXAMPLES=ON
    echo "=== [tsan] build ==="
    cmake --build "$BUILD_DIR" -j "$JOBS"
    echo "=== [tsan] smoke tests under ThreadSanitizer ==="
    ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j "$JOBS"
    continue
  fi
  if [ "$CONFIG" = "perf" ]; then
    BUILD_DIR="build-ci-perf"
    echo "=== [perf] configure ==="
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
          -DDNNFUSION_BUILD_TESTS=OFF -DDNNFUSION_BUILD_BENCH=ON \
          -DDNNFUSION_BUILD_EXAMPLES=OFF
    echo "=== [perf] build ==="
    cmake --build "$BUILD_DIR" -j "$JOBS" \
          --target bench_table6_latency bench_fig7_breakdown
    echo "=== [perf] kernel engines (BENCH_kernels.json) ==="
    # Exits non-zero when any engine pair (packed vs naive, program vs
    # treewalk) produces different bytes — the correctness guard.
    "$BUILD_DIR/bench_table6_latency" --json BENCH_kernels.json
    echo "=== [perf] end-to-end latency (BENCH_e2e.json) ==="
    "$BUILD_DIR/bench_fig7_breakdown" --json BENCH_e2e.json
    continue
  fi
  if [ "$CONFIG" = "serving" ]; then
    BUILD_DIR="build-ci-serving"
    echo "=== [serving] configure ==="
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
          -DDNNFUSION_BUILD_TESTS=OFF -DDNNFUSION_BUILD_BENCH=ON \
          -DDNNFUSION_BUILD_EXAMPLES=OFF
    echo "=== [serving] build ==="
    cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_serving_loadgen
    echo "=== [serving] closed-loop load smoke (BENCH_serving.json) ==="
    # --quick shortens the measurement windows; the exit code carries the
    # correctness guards (batched-vs-solo bit-identity, request accounting,
    # pool integrity after the shedding storm) — never a timing assertion.
    "$BUILD_DIR/bench_serving_loadgen" --quick --json BENCH_serving.json
    continue
  fi
  if [ "$CONFIG" = "forced" ]; then
    BUILD_DIR="build-ci-forced"
    echo "=== [forced] configure ==="
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    echo "=== [forced] build ==="
    cmake --build "$BUILD_DIR" -j "$JOBS"
    # One smoke pass per *bit-exact* registry tier. The env hook forces
    # dispatch for every default-config compile/execute in the suite; a
    # level the host cannot run clamps down to the best supported tier
    # (never up), so both passes run on any machine. avx2fma is excluded
    # on purpose: globally forcing the FMA tier would (correctly) break
    # the suite's cross-engine bit-identity assertions — that tier is
    # exercised at its documented tolerance by the forced-fma config of
    # the differential matrix instead.
    for LEVEL in scalar avx2; do
      echo "=== [forced] smoke tests at forced kernel level: $LEVEL ==="
      DNNFUSION_FORCE_KERNEL_LEVEL="$LEVEL" \
        ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j "$JOBS"
    done
    continue
  fi
  if [ "$CONFIG" = "chaos" ]; then
    BUILD_DIR="build-ci-chaos"
    echo "=== [chaos] configure (Debug) ==="
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Debug \
          -DDNNFUSION_BUILD_BENCH=OFF -DDNNFUSION_BUILD_EXAMPLES=OFF
    echo "=== [chaos] build ==="
    cmake --build "$BUILD_DIR" -j "$JOBS" --target test_chaos test_serving \
          test_graph_fuzz
    echo "=== [chaos] fault-point sweep + serving resilience (Debug) ==="
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
          -R 'test_chaos|test_serving|test_graph_fuzz'
    TSAN_DIR="build-ci-chaos-tsan"
    echo "=== [chaos] configure (ThreadSanitizer) ==="
    cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DDNNFUSION_TSAN=ON -DDNNFUSION_BUILD_BENCH=OFF \
          -DDNNFUSION_BUILD_EXAMPLES=OFF
    echo "=== [chaos] build (ThreadSanitizer) ==="
    cmake --build "$TSAN_DIR" -j "$JOBS" --target test_chaos test_serving
    echo "=== [chaos] chaos + serving tests under ThreadSanitizer ==="
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
          -R 'test_chaos|test_serving'
    BENCH_DIR="build-ci-chaos-bench"
    echo "=== [chaos] configure (loadgen) ==="
    cmake -B "$BENCH_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
          -DDNNFUSION_BUILD_TESTS=OFF -DDNNFUSION_BUILD_BENCH=ON \
          -DDNNFUSION_BUILD_EXAMPLES=OFF
    echo "=== [chaos] build (loadgen) ==="
    cmake --build "$BENCH_DIR" -j "$JOBS" --target bench_serving_loadgen
    echo "=== [chaos] degraded-mode storm (BENCH_serving_chaos.json) ==="
    # Exit code carries the guards (typed-or-served accounting under the
    # armed fault, healthy service after disarm) — never a timing bar.
    "$BENCH_DIR/bench_serving_loadgen" --quick --chaos \
        --json BENCH_serving_chaos.json
    continue
  fi
  if [ "$CONFIG" = "cache" ]; then
    BUILD_DIR="build-ci-cache"
    echo "=== [cache] configure ==="
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
          -DDNNFUSION_BUILD_TESTS=OFF -DDNNFUSION_BUILD_BENCH=ON \
          -DDNNFUSION_BUILD_EXAMPLES=ON
    echo "=== [cache] build ==="
    cmake --build "$BUILD_DIR" -j "$JOBS" \
          --target example_save_load_roundtrip bench_fig9b_compilation_time \
          dnnf-cache
    CACHE_DIR="$(mktemp -d)"
    echo "=== [cache] cold process (populates $CACHE_DIR) ==="
    "$BUILD_DIR/example_save_load_roundtrip" --cache-dir "$CACHE_DIR"
    echo "=== [cache] warm process (must hit the cache) ==="
    "$BUILD_DIR/example_save_load_roundtrip" --cache-dir "$CACHE_DIR" \
        --expect-cache-hit
    echo "=== [cache] dnnf-cache inspection over the populated dir ==="
    "$BUILD_DIR/dnnf-cache" list "$CACHE_DIR"
    # Every entry the two processes left behind must verify clean.
    "$BUILD_DIR/dnnf-cache" verify "$CACHE_DIR"
    rm -rf "$CACHE_DIR"
    echo "=== [cache] fig9b cold/warm sweep ==="
    "$BUILD_DIR/bench_fig9b_compilation_time" --json BENCH_fig9b.json
    continue
  fi
  BUILD_DIR="build-ci-${CONFIG,,}"
  echo "=== [$CONFIG] configure ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$CONFIG"
  echo "=== [$CONFIG] build ==="
  cmake --build "$BUILD_DIR" -j "$JOBS"
  echo "=== [$CONFIG] smoke tests ==="
  ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j "$JOBS"
  echo "=== [$CONFIG] full test suite ==="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
done

echo "CI passed for: ${CONFIGS[*]}"
