//===- tools/dnnf_cache.cpp - Compilation-cache inspection CLI ------------===//
//
// Part of the DNNFusion reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dnnf-cache`: operator tooling for a CompilationCache directory, the
/// on-disk store that compileModel and the serving ModelRegistry warm-start
/// from. The cache is shared mutable state across processes, so it needs
/// the usual cache hygiene commands:
///
///   dnnf-cache list   <dir>                key / size / last-use per entry
///   dnnf-cache verify <dir> [<key>...]     full artifact integrity check
///   dnnf-cache evict  <dir> --max-bytes N  LRU-evict down to a budget
///   dnnf-cache remove <dir> <key>...       drop named entries
///
/// Keys are the 16-hex-digit content fingerprints embedded in the artifact
/// filenames (model-<key>.dnnf). Exit code is 0 on success, 1 on any
/// failed verification, missing key, or usage error — suitable for cron
/// and CI health checks. `verify` deliberately does not refresh entry
/// recency, so routine sweeps never perturb LRU eviction order.
///
//===----------------------------------------------------------------------===//

#include "serialize/CompilationCache.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

using namespace dnnfusion;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: dnnf-cache <command> <cache-dir> [args]\n"
      "  list                     entries least-recently-used first\n"
      "  verify [<key>...]        integrity-check all (or named) entries\n"
      "  evict --max-bytes <N>    LRU-evict until the total fits N bytes\n"
      "  remove <key>...          remove the named entries\n"
      "keys are the 16-hex-digit fingerprints from `list` / filenames\n");
  return 1;
}

std::string fmtTime(int64_t Sec) {
  time_t T = static_cast<time_t>(Sec);
  struct tm Tm;
  gmtime_r(&T, &Tm);
  char Buf[32];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%d %H:%M:%S", &Tm);
  return Buf;
}

bool parseKey(const char *Arg, uint64_t &Key) {
  char *End = nullptr;
  Key = strtoull(Arg, &End, 16);
  return End && *End == '\0' && End != Arg;
}

int cmdList(const CompilationCache &Cache) {
  std::vector<CacheEntryInfo> Entries = Cache.entries();
  int64_t Total = 0;
  std::printf("%-16s  %10s  %-19s  %s\n", "key", "bytes", "last use (UTC)",
              "path");
  for (const CacheEntryInfo &E : Entries) {
    std::printf("%016" PRIx64 "  %10lld  %-19s  %s\n", E.Key,
                static_cast<long long>(E.Bytes), fmtTime(E.MtimeSec).c_str(),
                E.Path.c_str());
    Total += E.Bytes;
  }
  std::printf("%zu entries, %lld bytes\n", Entries.size(),
              static_cast<long long>(Total));
  return 0;
}

int verifyOne(const CompilationCache &Cache, uint64_t Key) {
  Status S = Cache.verifyEntry(Key);
  std::printf("%016" PRIx64 "  %s\n", Key,
              S.ok() ? "ok" : S.toString().c_str());
  return S.ok() ? 0 : 1;
}

int cmdVerify(const CompilationCache &Cache, int Argc, char **Argv) {
  int Failures = 0;
  if (Argc == 0) {
    // Full sweep through verifyAll: entries evicted concurrently (by
    // another process sharing the directory) are reported as skipped, not
    // counted as failures — a health check must not page on LRU churn.
    CacheVerifySweep Sweep = Cache.verifyAll();
    for (const auto &F : Sweep.Failures)
      std::printf("%016" PRIx64 "  %s\n", F.first, F.second.toString().c_str());
    std::printf("%lld verified, %lld skipped (evicted concurrently), "
                "%zu failed\n",
                static_cast<long long>(Sweep.Verified),
                static_cast<long long>(Sweep.SkippedEvicted),
                Sweep.Failures.size());
    Failures = static_cast<int>(Sweep.Failures.size());
  } else {
    for (int I = 0; I < Argc; ++I) {
      uint64_t Key;
      if (!parseKey(Argv[I], Key)) {
        std::fprintf(stderr, "bad key '%s'\n", Argv[I]);
        return usage();
      }
      Failures += verifyOne(Cache, Key);
    }
  }
  return Failures > 0 ? 1 : 0;
}

int cmdEvict(const CompilationCache &Cache, int Argc, char **Argv) {
  if (Argc != 2 || std::strcmp(Argv[0], "--max-bytes") != 0)
    return usage();
  char *End = nullptr;
  int64_t MaxBytes = strtoll(Argv[1], &End, 10);
  if (!End || *End != '\0' || MaxBytes < 0)
    return usage();
  std::vector<CacheEntryInfo> Before = Cache.entries();
  Cache.evictToBudget(MaxBytes);
  std::vector<CacheEntryInfo> After = Cache.entries();
  int64_t Kept = 0;
  for (const CacheEntryInfo &E : After)
    Kept += E.Bytes;
  for (const CacheEntryInfo &B : Before) {
    bool Survived = false;
    for (const CacheEntryInfo &A : After)
      Survived |= A.Key == B.Key;
    if (!Survived)
      std::printf("evicted %016" PRIx64 " (%lld bytes)\n", B.Key,
                  static_cast<long long>(B.Bytes));
  }
  std::printf("%zu entries kept, %lld bytes (budget %lld)\n", After.size(),
              static_cast<long long>(Kept),
              static_cast<long long>(MaxBytes));
  return 0;
}

int cmdRemove(const CompilationCache &Cache, int Argc, char **Argv) {
  if (Argc == 0)
    return usage();
  int Failures = 0;
  for (int I = 0; I < Argc; ++I) {
    uint64_t Key;
    if (!parseKey(Argv[I], Key)) {
      std::fprintf(stderr, "bad key '%s'\n", Argv[I]);
      return usage();
    }
    Status S = Cache.removeEntry(Key);
    std::printf("%016" PRIx64 "  %s\n", Key,
                S.ok() ? "removed" : S.toString().c_str());
    if (!S.ok())
      Failures = 1;
  }
  return Failures;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  const char *Cmd = Argv[1];
  CompilationCache Cache(Argv[2]);
  if (std::strcmp(Cmd, "list") == 0 && Argc == 3)
    return cmdList(Cache);
  if (std::strcmp(Cmd, "verify") == 0)
    return cmdVerify(Cache, Argc - 3, Argv + 3);
  if (std::strcmp(Cmd, "evict") == 0)
    return cmdEvict(Cache, Argc - 3, Argv + 3);
  if (std::strcmp(Cmd, "remove") == 0)
    return cmdRemove(Cache, Argc - 3, Argv + 3);
  return usage();
}
