//===- dnnfusion/dnnfusion.h - Public API facade ------------------*- C++ -*-===//
//
// Part of the DNNFusion reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable public surface of the library, in one include:
///
///   #include <dnnfusion/dnnfusion.h>
///
///   using namespace dnnfusion;
///   GraphBuilder B;
///   NodeId X = B.input(Shape({1, 3, 32, 32}), "image");
///   B.markOutput(B.relu(B.conv(X, 8, {3, 3}, {1, 1}, {1, 1})));
///
///   Expected<CompiledModel> Model = compileModel(B.take());
///   if (!Model.ok()) { /* Model.status() explains why */ }
///
///   InferenceSession Session(Model.takeValue());
///   Expected<std::vector<Tensor>> Out =
///       Session.run({{"image", MyImage}});   // named or positional
///
/// Supported types and entry points (everything else under src/ is
/// internal and may change between releases):
///
///   - Tensor, Shape, DType                    — request payloads
///   - GraphBuilder, Graph, NodeId, OpKind     — model construction
///   - CompileOptions, compileModel,
///     compileModelWithPlan, CompiledModel     — the compile boundary
///   - ModelSignature, TensorSpec              — the typed calling convention
///   - InferenceSession, SessionOptions,
///     SessionMetrics, ExecutionStats          — serving (one model)
///   - DynamicBatcher, BatcherOptions,
///     AdmissionController, AdmissionOptions,
///     ModelRegistry, RegistryOptions,
///     ServingStats, LatencyHistogram          — the serving front end:
///     dynamic batching, admission control, multi-model routing
///   - saveModel / loadModel,
///     saveGraph / loadGraph,
///     CompileOptions::CacheDir                — persistence (docs/FORMAT.md)
///   - Status, ErrorCode, Expected<T>          — the recoverable error model
///   - RunControl                              — cooperative deadline/cancel,
///     checked between fusion blocks
///   - RetryPolicy, retrySiteStats             — transient-I/O retry with
///     jittered exponential backoff
///   - FaultInjection, FaultSpec,
///     DNNFUSION_FAULT_SPEC                    — seeded fault injection for
///     chaos testing (zero-cost when disarmed)
///
/// Persistence: saveModel writes a compiled model (graph + fusion plan +
/// schedule + memory plan) as one versioned artifact that loadModel
/// restores without re-running planning, with bit-identical execution.
/// Setting CompileOptions::CacheDir makes compileModel do this
/// transparently, keyed on content hash — warm process starts skip the
/// planning cost entirely.
///
/// Error discipline: user-supplied bad input — a malformed graph at the
/// compile boundary, a bad inference request, a corrupted artifact file —
/// comes back as a Status/Expected error. Aborts (DNNF_CHECK) are
/// reserved for internal invariant violations, i.e. library bugs.
///
//===----------------------------------------------------------------------===//

#ifndef DNNFUSION_DNNFUSION_H
#define DNNFUSION_DNNFUSION_H

#include "graph/Graph.h"
#include "graph/GraphBuilder.h"
#include "runtime/InferenceSession.h"
#include "runtime/ModelCompiler.h"
#include "runtime/ModelSignature.h"
#include "serialize/GraphSerializer.h"
#include "serialize/ModelSerializer.h"
#include "serving/ModelRegistry.h"
#include "support/FaultInjection.h"
#include "support/Retry.h"
#include "support/Status.h"
#include "tensor/Tensor.h"

#endif // DNNFUSION_DNNFUSION_H
