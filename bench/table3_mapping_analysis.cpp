//===- bench/table3_mapping_analysis.cpp - Paper Table 3 ----------------------------===//
//
// The 5x5 mapping-type analysis matrix: fused mapping type plus the
// green/yellow/red profitability verdict for every ordered combination.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/FusionAnalysis.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Table 3: mapping type analysis",
               "Rows: first (producer) operator type. Columns: second "
               "(consumer) operator type. Cells: fused type [verdict].");
  const MappingType Types[] = {MappingType::OneToOne, MappingType::OneToMany,
                               MappingType::ManyToMany,
                               MappingType::Reorganize, MappingType::Shuffle};
  std::vector<std::string> Header = {"First op \\ Second op"};
  for (MappingType S : Types)
    Header.push_back(mappingTypeName(S));
  TablePrinter T(Header);
  int Green = 0, Yellow = 0, Red = 0;
  for (MappingType F : Types) {
    std::vector<std::string> Row = {mappingTypeName(F)};
    for (MappingType S : Types) {
      FusionVerdict V = fusionVerdict(F, S);
      Green += V == FusionVerdict::FuseThrough;
      Yellow += V == FusionVerdict::FuseDepend;
      Red += V == FusionVerdict::FuseBreak;
      Row.push_back(formatString("%s [%s]",
                                 mappingTypeName(fusedMappingType(F, S)),
                                 fusionVerdictColor(V)));
    }
    T.addRow(Row);
  }
  T.print();
  std::printf("\ncells: %d green, %d yellow, %d red => %d code-generation "
              "rules (paper: 23, one per green/yellow cell).\n",
              Green, Yellow, Red, Green + Yellow);
  return 0;
}
