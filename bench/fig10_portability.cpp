//===- bench/fig10_portability.cpp - Paper Figure 10 -------------------------------------===//
//
// Portability: YOLO-V4 and GPT-2 latency on the three device profiles
// (Galaxy S20 / Galaxy S10 / Honor Magic 2), CPU and GPU, per framework.
// Older, narrower devices are more sensitive to layer count and
// intermediate-result size, so fusion helps them disproportionately.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Figure 10: portability across devices (modeled latency, ms)",
               "Roofline device models scaled from the SoCs' public specs.");
  struct Device {
    const char *Label;
    DeviceProfile Cpu, Gpu;
  };
  const Device Devices[] = {
      {"Galaxy S20 (Snapdragon 865)", snapdragon865Cpu(), snapdragon865Gpu()},
      {"Galaxy S10 (Snapdragon 855)", snapdragon855Cpu(), snapdragon855Gpu()},
      {"Honor Magic 2 (Kirin 980)", kirin980Cpu(), kirin980Gpu()},
  };
  const Config Configs[] = {Config::MnnLike, Config::TvmLike,
                            Config::TfliteLike, Config::PytorchLike,
                            Config::Dnnf};
  for (const char *Name : {"YOLO-V4", "GPT-2"}) {
    auto Build = [&] { return buildModel(Name); };
    std::printf("-- %s --\n", Name);
    TablePrinter T({"Framework", "S20 cpu", "S20 gpu", "S10 cpu", "S10 gpu",
                    "Magic2 cpu", "Magic2 gpu"});
    std::vector<double> DnnfRow;
    for (Config C : Configs) {
      CompiledModel M = compileConfig(Build, C);
      std::vector<std::string> Row = {configName(C)};
      for (const Device &D : Devices) {
        Row.push_back(fmtMs(modelLatencyMs(M, D.Cpu)));
        Row.push_back(fmtMs(modelLatencyMs(M, D.Gpu)));
      }
      T.addRow(Row);
    }
    T.print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): DNNF is fastest on every device, and "
              "its *relative* advantage grows on the older devices (more "
              "restricted resources are more sensitive to layer count and "
              "intermediate size).\n");
  return 0;
}
