//===- bench/serving_loadgen.cpp - Closed-loop serving load bench ---------------===//
//
// The serving front end under load: closed-loop clients (each submits its
// next request the moment the previous one completes) hammer one
// DynamicBatcher at increasing client counts, batching on vs off, and the
// bench reports served QPS and p50/p99 latency per point — the
// throughput/latency trade the arrival-window coalescing buys. A
// saturation-storm section drives a deliberately under-provisioned queue
// and proves every shed request surfaced as a typed Status (shed counters
// reconcile exactly with client-observed rejections; any abort kills the
// binary and fails CI).
//
// `--json <path>` emits BENCH_serving.json. `--quick` shortens every
// measurement window (the CI smoke setting: crash/guard failures only,
// timing numbers are not inspected). Exit code is the correctness guard:
// batched outputs must stay bit-identical to solo execution, and request
// accounting must balance.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "serving/ModelRegistry.h"
#include "support/FaultInjection.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

/// One measured point of the closed loop.
struct LoadPoint {
  int Clients = 0;
  bool Batched = false;
  double DurationSec = 0;
  uint64_t Served = 0;
  uint64_t Shed = 0;
  double Qps = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double MeanBatch = 0; ///< Requests per dispatched execution.
};

/// Drives \p Clients closed-loop client threads against \p Batcher for
/// \p Seconds. Every client loops: submit, check, submit again. Counters
/// come from the batcher's own stats delta so queueing time is included in
/// the reported percentiles.
LoadPoint runClosedLoop(DynamicBatcher &Batcher, int Clients, double Seconds,
                        bool Batched, int *Guard) {
  ServingStats Before = Batcher.stats();
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ClientServed{0}, ClientShed{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      // Distinct per-client inputs so batches mix real traffic.
      Rng R(static_cast<uint64_t>(100 + C));
      std::vector<Tensor> In;
      for (const TensorSpec &Spec : Batcher.signature().Inputs) {
        Tensor T(Spec.Sh, Spec.Ty);
        fillRandom(T, R, 0.2f, 1.0f);
        In.push_back(std::move(T));
      }
      while (!Stop.load(std::memory_order_relaxed)) {
        Expected<std::vector<Tensor>> Out = Batcher.submit(In);
        if (Out.ok()) {
          ++ClientServed;
        } else {
          // Typed shed (queue full under saturation) — never an abort.
          ++ClientShed;
        }
      }
    });
  WallTimer T;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(Seconds * 1000)));
  Stop = true;
  for (std::thread &Th : Threads)
    Th.join();
  double Elapsed = T.millis() / 1000.0;

  ServingStats After = Batcher.stats();
  LoadPoint P;
  P.Clients = Clients;
  P.Batched = Batched;
  P.DurationSec = Elapsed;
  P.Served = After.Served - Before.Served;
  // Everything a client saw resolve without outputs: admission sheds plus
  // the typed execution failures chaos mode provokes (zero otherwise).
  P.Shed = (After.ShedQueueFull - Before.ShedQueueFull) +
           (After.ShedDeadline - Before.ShedDeadline) +
           (After.FailedExecution - Before.FailedExecution) +
           (After.DeadlineMidExecution - Before.DeadlineMidExecution);
  P.Qps = Elapsed > 0 ? static_cast<double>(P.Served) / Elapsed : 0;
  P.P50Ms = After.TotalMicros.percentile(50.0) / 1000.0;
  P.P99Ms = After.TotalMicros.percentile(99.0) / 1000.0;
  uint64_t Batches = After.BatchesExecuted - Before.BatchesExecuted;
  P.MeanBatch =
      Batches > 0 ? static_cast<double>(P.Served) / static_cast<double>(Batches)
                  : 0;
  // Accounting must balance: what clients observed is what the front end
  // counted. (Served can race one in-flight request past the stop flag;
  // tolerate off-by-Clients, nothing more.)
  uint64_t ClientTotal = ClientServed + ClientShed;
  uint64_t FrontEndTotal = P.Served + P.Shed;
  uint64_t Diff = ClientTotal > FrontEndTotal ? ClientTotal - FrontEndTotal
                                              : FrontEndTotal - ClientTotal;
  if (Diff > static_cast<uint64_t>(Clients)) {
    std::fprintf(stderr,
                 "ACCOUNTING GUARD: clients saw %llu requests, front end "
                 "counted %llu\n",
                 static_cast<unsigned long long>(ClientTotal),
                 static_cast<unsigned long long>(FrontEndTotal));
    *Guard = 1;
  }
  return P;
}

/// Bit-identity guard: one batched pass over the factory must reproduce
/// solo batch-1 outputs exactly (the serving layer's core promise).
int checkBatchedBitIdentity(DynamicBatcher::GraphFactory Factory,
                            const char *Name) {
  CompiledModel Solo = cantFail(compileModel(Factory(1)));
  InferenceSession SoloSession(std::move(Solo));
  BatcherOptions O;
  O.MaxQueueDelayMicros = 50000;
  std::unique_ptr<DynamicBatcher> B =
      cantFail(DynamicBatcher::create(Factory, CompileOptions(), O));
  const int N = 5; // Greedy 4 + 1: exercises a real batched execution.
  std::vector<std::vector<Tensor>> In(N);
  std::vector<std::vector<Tensor>> Want(N);
  for (int R = 0; R < N; ++R) {
    Rng Rand(static_cast<uint64_t>(500 + R));
    for (const TensorSpec &Spec : B->signature().Inputs) {
      Tensor T(Spec.Sh, Spec.Ty);
      fillRandom(T, Rand, 0.2f, 1.0f);
      In[static_cast<size_t>(R)].push_back(std::move(T));
    }
    Want[static_cast<size_t>(R)] =
        cantFail(SoloSession.run(In[static_cast<size_t>(R)]));
  }
  std::atomic<int> Guard{0};
  std::vector<std::thread> Threads;
  for (int R = 0; R < N; ++R)
    Threads.emplace_back([&, R] {
      Expected<std::vector<Tensor>> Out =
          B->submit(In[static_cast<size_t>(R)]);
      if (!Out.ok()) {
        Guard = 1;
        return;
      }
      const std::vector<Tensor> &W = Want[static_cast<size_t>(R)];
      for (size_t O2 = 0; O2 < W.size(); ++O2)
        for (int64_t I = 0; I < W[O2].numElements(); ++I)
          if (W[O2].at(I) != Out.value()[O2].at(I)) {
            std::fprintf(stderr,
                         "CORRECTNESS GUARD: %s batched output diverges "
                         "from solo at request %d output %zu element %lld\n",
                         Name, R, O2, static_cast<long long>(I));
            Guard = 1;
            return;
          }
    });
  for (std::thread &T : Threads)
    T.join();
  return Guard;
}

/// The serving MLP, in the weight-stationary y = W.x formulation: requests
/// arrive as rows {Batch, 256}, are transposed into columns, and every dense
/// layer is W[Out,In] @ x[In, Batch]. At batch 1 each layer degenerates into
/// a matrix-vector product whose cost is streaming the whole weight matrix
/// per request; coalescing to batch B reuses every weight element across B
/// columns. This is the weight-bandwidth-bound regime dynamic batching
/// exists for. Weights are shape- and value-identical at every batch (same
/// seed, same weight order, no batch-dependent weight shapes).
Graph servingMlp(int64_t Batch) {
  GraphBuilder B(42);
  NodeId X = B.input(Shape({Batch, 256}), "features");
  NodeId H = B.transpose(X, {1, 0}); // {256, Batch}: one column per request.
  auto Dense = [&B](NodeId In, int64_t InF, int64_t OutF) {
    float Scale = 1.0f / std::sqrt(static_cast<float>(InF));
    NodeId W = B.weight(Shape({OutF, InF}), Scale);
    NodeId Bias = B.weight(Shape({OutF, 1}), Scale); // Broadcast over columns.
    return B.add(B.binary(OpKind::MatMul, W, In), Bias);
  };
  H = B.relu(Dense(H, 256, 1024));
  H = B.relu(Dense(H, 1024, 1024));
  H = Dense(H, 1024, 64);
  B.markOutput(B.softmax(B.transpose(H, {1, 0}), -1));
  return B.take();
}

BatcherOptions servingOptions(bool Batched) {
  BatcherOptions O;
  O.MaxBatchSize = Batched ? 16 : 1;
  O.BatchSizes = {1, 2, 4, 8, 16};
  O.MaxQueueDelayMicros = Batched ? 2000 : 0;
  O.Admission.MaxQueueDepth = 256;
  return O;
}

void printPoint(TablePrinter &T, const LoadPoint &P) {
  T.addRow({P.Batched ? "on" : "off", fmtCount(P.Clients),
            formatString("%.0f", P.Qps), fmtMs(P.P50Ms), fmtMs(P.P99Ms),
            formatString("%.2f", P.MeanBatch), fmtCount(static_cast<int64_t>(P.Shed))});
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  bool Quick = false;
  bool Chaos = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--chaos") == 0)
      Chaos = true;
  }
  const double Window = Quick ? 0.25 : 1.5; // Seconds per measured point.
  const int ClientSweep[] = {1, 2, 4, 8, 16};
  int Guard = 0;

  printHeading("Serving load bench: dynamic batching on vs off",
               "Closed-loop clients; served QPS and latency percentiles "
               "per offered concurrency. Bit-identity and request "
               "accounting are hard guards.");

  struct ModelUnderLoad {
    const char *Name;
    DynamicBatcher::GraphFactory Factory;
  };
  const ModelUnderLoad Models[] = {
      {"serving-mlp", servingMlp},
      {"TinyBERT", [](int64_t B) { return buildModelBatched("TinyBERT", B); }},
  };

  FILE *Out = nullptr;
  if (JsonPath) {
    Out = std::fopen(JsonPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s\n", JsonPath);
      return 1;
    }
    std::fprintf(Out,
                 "{\n  \"bench\": \"serving\",\n  \"host_cpus\": %u,\n"
                 "  \"threads\": %u,\n  \"models\": [\n",
                 std::thread::hardware_concurrency(),
                 std::thread::hardware_concurrency());
  }

  // The acceptance headline: the first (weight-bandwidth-bound) model's
  // batched-vs-unbatched throughput ratio at the saturating client count.
  double PrimarySpeedup = 0;

  for (size_t MI = 0; MI < sizeof(Models) / sizeof(Models[0]); ++MI) {
    const ModelUnderLoad &M = Models[MI];
    Guard |= checkBatchedBitIdentity(M.Factory, M.Name);

    TablePrinter T({"Batching", "Clients", "QPS", "p50 ms", "p99 ms",
                    "Mean batch", "Shed"});
    std::vector<LoadPoint> Points;
    for (bool Batched : {false, true}) {
      std::unique_ptr<DynamicBatcher> B = cantFail(DynamicBatcher::create(
          M.Factory, CompileOptions(), servingOptions(Batched)));
      // Warm every bucket outside the measurement windows so on-demand
      // variant compiles don't pollute the measured points: one fully
      // coalesced wave per ladder size.
      if (Batched) {
        for (int Wave : {16, 8, 4, 2}) {
          std::vector<std::thread> Warm;
          for (int C = 0; C < Wave; ++C)
            Warm.emplace_back([&] {
              Rng R(1);
              std::vector<Tensor> In;
              for (const TensorSpec &Spec : B->signature().Inputs) {
                Tensor Tn(Spec.Sh, Spec.Ty);
                fillRandom(Tn, R, 0.2f, 1.0f);
                In.push_back(std::move(Tn));
              }
              (void)B->submit(In);
            });
          for (std::thread &W : Warm)
            W.join();
        }
      }
      for (int Clients : ClientSweep) {
        LoadPoint P = runClosedLoop(*B, Clients, Window, Batched, &Guard);
        printPoint(T, P);
        Points.push_back(P);
      }
    }
    std::printf("\n-- %s --\n", M.Name);
    T.print();

    // Saturation speedup: batched vs unbatched served QPS at the highest
    // client count (the acceptance bar for the serving layer: >= 2x for
    // the dispatch-bound model class).
    double UnbatchedSat = 0, BatchedSat = 0;
    for (const LoadPoint &P : Points)
      if (P.Clients == ClientSweep[sizeof(ClientSweep) / sizeof(int) - 1]) {
        (P.Batched ? BatchedSat : UnbatchedSat) = P.Qps;
      }
    double Speedup = UnbatchedSat > 0 ? BatchedSat / UnbatchedSat : 0;
    std::printf("saturation speedup (batched/unbatched): %.2fx\n", Speedup);
    if (MI == 0)
      PrimarySpeedup = Speedup;

    if (Out) {
      std::fprintf(Out, "    {\"name\": \"%s\", \"points\": [\n", M.Name);
      for (size_t PI = 0; PI < Points.size(); ++PI) {
        const LoadPoint &P = Points[PI];
        std::fprintf(
            Out,
            "      {\"batching\": %s, \"clients\": %d, \"threads\": %d, "
            "\"duration_s\": %.2f, \"served\": %llu, \"shed\": %llu, "
            "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"mean_batch\": %.2f}%s\n",
            P.Batched ? "true" : "false", P.Clients, P.Clients, P.DurationSec,
            static_cast<unsigned long long>(P.Served),
            static_cast<unsigned long long>(P.Shed), P.Qps, P.P50Ms, P.P99Ms,
            P.MeanBatch, PI + 1 < Points.size() ? "," : "");
      }
      std::fprintf(Out,
                   "    ], \"saturation_speedup\": %.3f}%s\n", Speedup,
                   MI + 1 < sizeof(Models) / sizeof(Models[0]) ? "," : "");
      std::fflush(Out);
    }
  }

  // --- Saturation storm: under-provisioned queue, every shed is typed ---
  printHeading("Saturation storm",
               "16 clients, queue bound 4, 1 ms deadlines: shedding must "
               "be typed and accounted, the pool must serve afterwards.");
  {
    BatcherOptions O = servingOptions(true);
    O.Admission.MaxQueueDepth = 4;
    // Longer than the 2 ms arrival window, shorter than queueing time under
    // a 16-client storm: some requests serve, the laggards shed typed.
    O.Admission.DefaultDeadlineMicros = 5000;
    std::unique_ptr<DynamicBatcher> B = cantFail(
        DynamicBatcher::create(servingMlp, CompileOptions(), O));
    LoadPoint Storm =
        runClosedLoop(*B, 16, Quick ? 0.25 : 1.0, true, &Guard);
    ServingStats S = B->stats();
    std::printf("storm: served %llu, shed %llu (queue-full %llu, "
                "deadline %llu), served-after-storm check: ",
                static_cast<unsigned long long>(Storm.Served),
                static_cast<unsigned long long>(Storm.Shed),
                static_cast<unsigned long long>(S.ShedQueueFull),
                static_cast<unsigned long long>(S.ShedDeadline));
    // Pool integrity after the storm.
    Rng R(9);
    std::vector<Tensor> In;
    for (const TensorSpec &Spec : B->signature().Inputs) {
      Tensor Tn(Spec.Sh, Spec.Ty);
      fillRandom(Tn, R, 0.2f, 1.0f);
      In.push_back(std::move(Tn));
    }
    // Explicit generous deadline: the default 5 ms storm deadline would
    // shed an idle-queue request still waiting out the arrival window.
    Expected<std::vector<Tensor>> After = B->submit(In, 1000000);
    if (!After.ok()) {
      std::printf("FAIL (%s)\n", After.status().toString().c_str());
      Guard = 1;
    } else {
      std::printf("ok\n");
    }
    if (Out)
      std::fprintf(
          Out,
          "  ],\n  \"storm\": {\"clients\": 16, \"queue_bound\": 4, "
          "\"deadline_us\": 5000, \"served\": %llu, \"shed_queue_full\": "
          "%llu, \"shed_deadline\": %llu},\n",
          static_cast<unsigned long long>(Storm.Served),
          static_cast<unsigned long long>(S.ShedQueueFull),
          static_cast<unsigned long long>(S.ShedDeadline));
  }

  // --- Chaos: degraded-mode serving under injected block faults ---------
  // Guard-only: the recorded p99 documents what degradation costs, but the
  // pass/fail signal is typed-or-served accounting while the fault is hot
  // and a healthy request once it clears.
  if (Chaos) {
    printHeading("Chaos storm (--chaos)",
                 "16 clients with exec.block armed intermittently: breakers "
                 "trip, dispatch decomposes, every failure stays typed, and "
                 "the pool serves healthy after disarm.");
    BatcherOptions O = servingOptions(true);
    O.BreakerCooldownMicros = 20000; // Trip and recover within the window.
    std::unique_ptr<DynamicBatcher> B = cantFail(
        DynamicBatcher::create(servingMlp, CompileOptions(), O));
    FaultInjection::instance().reset(99);
    FaultSpec Intermittent;
    Intermittent.Probability = 0.02;
    FaultInjection::instance().arm(faultpoints::ExecBlock, Intermittent);
    LoadPoint Degraded =
        runClosedLoop(*B, 16, Quick ? 0.25 : 1.0, true, &Guard);
    FaultInjection::instance().reset();
    ServingStats S = B->stats();
    std::printf("chaos: served %llu, typed failures %llu, breaker trips "
                "%llu, degraded requests %llu, p99 %.3f ms, "
                "healthy-after-disarm check: ",
                static_cast<unsigned long long>(Degraded.Served),
                static_cast<unsigned long long>(S.FailedExecution),
                static_cast<unsigned long long>(S.BreakerTrips),
                static_cast<unsigned long long>(S.DegradedRequests),
                Degraded.P99Ms);
    if (Degraded.Served == 0) {
      std::printf("FAIL (nothing served under 2%% fault rate)\n");
      Guard = 1;
    } else {
      Rng R(11);
      std::vector<Tensor> In;
      for (const TensorSpec &Spec : B->signature().Inputs) {
        Tensor Tn(Spec.Sh, Spec.Ty);
        fillRandom(Tn, R, 0.2f, 1.0f);
        In.push_back(std::move(Tn));
      }
      Expected<std::vector<Tensor>> After = B->submit(In, 1000000);
      if (!After.ok()) {
        std::printf("FAIL (%s)\n", After.status().toString().c_str());
        Guard = 1;
      } else {
        std::printf("ok\n");
      }
    }
    if (Out)
      std::fprintf(
          Out,
          "  \"chaos\": {\"clients\": 16, \"fault_point\": \"exec.block\", "
          "\"probability\": 0.02, \"served\": %llu, \"failed_execution\": "
          "%llu, \"breaker_trips\": %llu, \"degraded_requests\": %llu, "
          "\"p99_ms\": %.3f},\n",
          static_cast<unsigned long long>(Degraded.Served),
          static_cast<unsigned long long>(S.FailedExecution),
          static_cast<unsigned long long>(S.BreakerTrips),
          static_cast<unsigned long long>(S.DegradedRequests),
          Degraded.P99Ms);
  }

  if (Out) {
    std::fprintf(Out,
                 "  \"saturation_speedup\": %.3f,\n"
                 "  \"correctness_guard\": \"%s\"\n}\n",
                 PrimarySpeedup, Guard == 0 ? "pass" : "FAIL");
    std::fclose(Out);
    std::printf("\nJSON written to %s%s\n", JsonPath,
                Guard ? " (GUARD FAILED)" : "");
  }
  return Guard;
}
