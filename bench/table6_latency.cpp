//===- bench/table6_latency.cpp - Paper Table 6 ---------------------------------------===//
//
// Inference latency for all 15 models under the four emulated frameworks,
// OurB (fusion off), OurB+ (fixed-pattern fusion), and DNNFusion.
// CPU latency is measured on the host; GPU latency comes from the
// calibrated Adreno-650 roofline device model (DESIGN.md §2).
//
// `--json <path>` switches to the execution-engine tracker instead:
// naive-vs-packed GEMM/conv per shape class, interpreted-vs-program DFT
// evaluation, and the four engine combinations per zoo model, emitted as
// machine-readable JSON (BENCH_kernels.json in CI). Exits non-zero if any
// engine pair diverges — the perf-smoke correctness guard.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstring>

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      return emitKernelsJson(argv[I + 1]);
  printHeading(
      "Table 6: inference latency (ms)",
      "CPU columns: measured medians on this host. GPU columns: modeled on "
      "the Snapdragon 865 (Adreno 650) roofline profile.");
  const Config Configs[] = {Config::MnnLike, Config::TvmLike,
                            Config::TfliteLike, Config::PytorchLike,
                            Config::OurB, Config::OurBPlus, Config::Dnnf};
  std::vector<std::string> Header = {"Model", "#FLOPS(M)"};
  for (Config C : Configs) {
    Header.push_back(std::string(configName(C)) + " cpu");
    Header.push_back(std::string(configName(C)) + " gpu");
  }
  Header.push_back("DNNF/OurB+");
  TablePrinter T(Header);
  DeviceProfile Gpu = snapdragon865Gpu();

  for (const ModelZooEntry &E : modelZoo()) {
    std::vector<std::string> Row = {E.Info.Name};
    double OurBPlusCpu = 0, DnnfCpu = 0;
    bool First = true;
    for (Config C : Configs) {
      CompiledModel M = compileConfig(E.Build, C);
      if (First) {
        Row.push_back(formatString(
            "%.1f", static_cast<double>(M.totalFlops()) / 1e6));
        First = false;
      }
      double CpuMs = medianLatencyMs(M);
      double GpuMs = modelLatencyMs(M, Gpu);
      if (C == Config::OurBPlus)
        OurBPlusCpu = CpuMs;
      if (C == Config::Dnnf)
        DnnfCpu = CpuMs;
      Row.push_back(fmtMs(CpuMs));
      Row.push_back(fmtMs(GpuMs));
    }
    Row.push_back(fmtRatio(OurBPlusCpu / DnnfCpu));
    T.addRow(Row);
    std::fflush(stdout);
  }
  T.print();
  std::printf(
      "\nExpected shape (paper): DNNF fastest everywhere; the GPU-modeled "
      "gap is wider than the CPU gap (launch overhead + intermediate "
      "traffic dominate there). CPU-measured gaps on this desktop-class "
      "host are muted relative to the paper's phones (see EXPERIMENTS.md).\n");
  return 0;
}
