//===- bench/table2_op_classification.cpp - Paper Table 2 --------------------------===//
//
// The operator -> mapping-type classification, generated from the operator
// schema so the printed table is the classification the compiler actually
// uses.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "ops/OpSchema.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Table 2: classification of DNN operators in mapping types",
               "Generated from the live operator schema (ops/OpSchema.cpp).");
  TablePrinter T({"Mapping type", "Operators", "Count"});
  for (MappingType MT :
       {MappingType::OneToOne, MappingType::OneToMany, MappingType::ManyToMany,
        MappingType::Reorganize, MappingType::Shuffle}) {
    std::vector<std::string> Ops;
    for (int I = 0; I < NumOpKinds; ++I) {
      OpKind K = opKindFromIndex(I);
      if (K == OpKind::Input || K == OpKind::Constant)
        continue;
      if (staticMappingType(K) == MT)
        Ops.push_back(opKindName(K));
    }
    T.addRow({mappingTypeName(MT), joinStrings(Ops, ", "),
              fmtCount(static_cast<int64_t>(Ops.size()))});
  }
  T.print();
  std::printf("\nNote: elementwise operators with a broadcasting operand are "
              "classified One-to-Many at use sites (Table 2's 'Elementwise "
              "w/ broadcast' row).\n");
  return 0;
}
