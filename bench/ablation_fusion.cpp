//===- bench/ablation_fusion.cpp - design-choice ablations ----------------------------===//
//
// Ablations for the design decisions DESIGN.md calls out:
//  1. Seed selection policy (paper: minimum-IRS One-to-One seeds).
//  2. Yellow (profile-dependent) fusion on/off.
//  3. Constraint threshold (max operators per block).
//  4. Intra-block data-movement folding and CSE materialization.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Ablations: fusion design choices (YOLO-V4 and GPT-2)",
               "Fused layer counts and measured CPU latency per variant.");

  for (const char *Name : {"YOLO-V4", "GPT-2"}) {
    auto Build = [&] { return buildModel(Name); };
    std::printf("-- %s --\n", Name);
    TablePrinter T({"Variant", "Fused layers", "Scratch (MB)", "CPU (ms)"});

    auto Report = [&](const char *Label, const CompileOptions &Opt) {
      CompiledModel M = cantFail(compileModel(Build(), Opt));
      T.addRow({Label, fmtCount(M.Plan.fusedLayerCount()),
                fmtMb(M.Memory.ScratchBytes), fmtMs(medianLatencyMs(M))});
    };

    CompileOptions Default;
    Report("default (min-IRS seeds)", Default);

    CompileOptions MaxIrs;
    MaxIrs.Planner.Seeds = PlannerOptions::SeedPolicy::MaxIntermediateResult;
    Report("max-IRS seeds", MaxIrs);

    CompileOptions FirstTopo;
    FirstTopo.Planner.Seeds = PlannerOptions::SeedPolicy::FirstTopological;
    Report("first-topological seeds", FirstTopo);

    CompileOptions NoYellow;
    NoYellow.Planner.EnableYellowFusion = false;
    Report("yellow fusion disabled", NoYellow);

    CompileOptions Tight;
    Tight.Planner.MaxOpsPerBlock = 8;
    Report("constraint: max 8 ops/block", Tight);

    CompileOptions Loose;
    Loose.Planner.MaxOpsPerBlock = 256;
    Loose.Planner.MaxBlockInputs = 128;
    Report("constraint: max 256 ops/block", Loose);

    CompileOptions NoFold;
    NoFold.EnableOtherOpts = false;
    Report("no data-movement folding (Other off)", NoFold);

    CompileOptions NoCse;
    NoCse.Codegen.MaterializeShared = false;
    Report("no CSE materialization (recompute)", NoCse);

    T.print();
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
