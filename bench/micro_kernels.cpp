//===- bench/micro_kernels.cpp - google-benchmark micro kernels -----------------------===//
//
// Micro-benchmarks (google-benchmark) isolating the mechanisms behind the
// end-to-end results: fused vs unfused elementwise chains, data-movement
// folding vs materialization, DFT chunk-size sensitivity, interpreted vs
// compiled-program evaluation, and the GEMM kernels (naive, tiled,
// packed) the auto-tuner searches.
//
// `--json <path>` bypasses google-benchmark and emits the execution-engine
// comparison (BENCH_kernels.json) via the shared hand-timed harness in
// BenchUtils.h — the same output `bench_table6_latency --json` produces.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "graph/GraphBuilder.h"
#include "ops/Kernels.h"
#include "ops/KernelRegistry.h"
#include "ops/KernelsAttention.h"
#include "ops/KernelsGemmPacked.h"
#include "runtime/ExecutionContext.h"
#include "tensor/TensorUtils.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>

using namespace dnnfusion;

namespace {

Graph elementwiseChain(int64_t N, int Depth) {
  GraphBuilder B(1);
  NodeId H = B.input(Shape({N}));
  for (int I = 0; I < Depth; ++I)
    H = B.unary(I % 3 == 0   ? OpKind::Relu
                : I % 3 == 1 ? OpKind::Sigmoid
                             : OpKind::Neg,
                H);
  B.markOutput(H);
  return B.take();
}

void runModel(benchmark::State &State, const CompiledModel &M) {
  ExecutionContext E(M);
  Rng R(3);
  std::vector<Tensor> Inputs;
  for (NodeId Id : M.InputIds) {
    Tensor T(M.G.node(Id).OutShape);
    fillRandom(T, R);
    Inputs.push_back(std::move(T));
  }
  for (auto _ : State) {
    E.run(Inputs);
    benchmark::ClobberMemory();
  }
}

void BM_ElementwiseChainUnfused(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.EnableFusion = false;
  Opt.EnableOtherOpts = false;
  CompiledModel M =
      cantFail(compileModel(elementwiseChain(State.range(0), 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ElementwiseChainUnfused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ElementwiseChainFused(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  CompiledModel M =
      cantFail(compileModel(elementwiseChain(State.range(0), 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ElementwiseChainFused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

Graph transposeChain(int64_t Side) {
  GraphBuilder B(2);
  NodeId X = B.input(Shape({Side, Side, 16}));
  NodeId T = B.transpose(X, {1, 0, 2});
  NodeId R = B.reshape(T, {Side * Side, 16});
  B.markOutput(B.relu(R));
  return B.take();
}

void BM_MovementFolded(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  CompiledModel M = cantFail(compileModel(transposeChain(State.range(0)), Opt));
  runModel(State, M);
}
BENCHMARK(BM_MovementFolded)->Arg(64)->Arg(160);

void BM_MovementMaterialized(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.EnableOtherOpts = false;
  CompiledModel M = cantFail(compileModel(transposeChain(State.range(0)), Opt));
  runModel(State, M);
}
BENCHMARK(BM_MovementMaterialized)->Arg(64)->Arg(160);

void BM_ChunkSize(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.Codegen.ChunkSize = static_cast<int>(State.range(0));
  CompiledModel M = cantFail(compileModel(elementwiseChain(1 << 16, 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ChunkSize)->Arg(16)->Arg(64)->Arg(256)->Arg(512);

// Engine dimension: the same fused chain interpreted per chunk by the
// tree-walk vs executed as a compiled instruction tape.
void BM_ChainTreewalk(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.Codegen.UseCompiledPrograms = false;
  CompiledModel M =
      cantFail(compileModel(elementwiseChain(State.range(0), 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ChainTreewalk)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ChainProgram(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  CompiledModel M =
      cantFail(compileModel(elementwiseChain(State.range(0), 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ChainProgram)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// The packed register-blocked micro kernel across blocking parameters
// (weights prepacked outside the loop, the serving hot path).
void BM_GemmPacked(benchmark::State &State) {
  int64_t N = 256;
  Rng R(5);
  Tensor A(Shape({N, N})), B(Shape({N, N})), C(Shape({N, N}));
  fillRandom(A, R);
  fillRandom(B, R);
  int MR = static_cast<int>(State.range(0));
  int NR = static_cast<int>(State.range(1));
  std::vector<float> Packed(
      static_cast<size_t>(packedPanelElems(N, N, NR)));
  packBPanels(B.data(), N, 1, N, N, NR, Packed.data());
  for (auto _ : State) {
    gemmPackedRows(A.data(), N, 1, Packed.data(), C.data(), N, 0, N, N, N,
                   MR, NR, nullptr);
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations() * 2 * N * N * N);
}
BENCHMARK(BM_GemmPacked)
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({4, 32})
    ->Args({8, 32});

// The same packed micro kernel per kernel-registry tier (0 = scalar,
// 1 = avx2, 2 = avx2fma). A tier the host cannot execute clamps down
// through resolveKernelLevel — the bench label records the requested
// tier, SetLabel the one that actually ran.
void BM_GemmPackedTier(benchmark::State &State) {
  int64_t N = 256;
  Rng R(5);
  Tensor A(Shape({N, N})), B(Shape({N, N})), C(Shape({N, N}));
  fillRandom(A, R);
  fillRandom(B, R);
  int MR = 8, NR = 32;
  std::vector<float> Packed(
      static_cast<size_t>(packedPanelElems(N, N, NR)));
  packBPanels(B.data(), N, 1, N, N, NR, Packed.data());
  KernelLevel Level = resolveKernelLevel(static_cast<int>(State.range(0)),
                                         dispatchFeatureMask());
  State.SetLabel(kernelLevelName(Level));
  for (auto _ : State) {
    gemmPackedRows(A.data(), N, 1, Packed.data(), C.data(), N, 0, N, N, N,
                   MR, NR, nullptr, Level);
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations() * 2 * N * N * N);
}
BENCHMARK(BM_GemmPackedTier)->Arg(0)->Arg(1)->Arg(2);

// Fused-attention inner loop per registry tier. Every tier is
// bit-identical here (the AVX2 rows vectorize the score/accumulate loops
// without touching the online-softmax order), so the tiers differ in
// speed only.
void BM_FusedAttentionTier(benchmark::State &State) {
  int64_t Batches = 4, S = 128, Dh = 64;
  Rng R(7);
  Tensor Q(Shape({Batches, S, Dh})), Kt(Shape({Batches, Dh, S}));
  Tensor V(Shape({Batches, S, Dh})), Out(Shape({Batches, S, Dh}));
  fillRandom(Q, R);
  fillRandom(Kt, R);
  fillRandom(V, R);
  float Scale = 1.0f / std::sqrt(static_cast<float>(Dh));
  KernelLevel Level = resolveKernelLevel(static_cast<int>(State.range(0)),
                                         dispatchFeatureMask());
  State.SetLabel(kernelLevelName(Level));
  for (auto _ : State) {
    runFusedAttention(Q.data(), Kt.data(), V.data(), nullptr, 0, Scale,
                      /*Causal=*/true, Out.data(), Batches, S, Dh, nullptr,
                      Level);
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations() * Batches * S * S * Dh * 2);
}
BENCHMARK(BM_FusedAttentionTier)->Arg(0)->Arg(1)->Arg(2);

void BM_MatmulTiled(benchmark::State &State) {
  int64_t N = 256;
  Rng R(5);
  Tensor A(Shape({N, N})), B(Shape({N, N})), C(Shape({N, N}));
  fillRandom(A, R);
  fillRandom(B, R);
  KernelConfig Config;
  Config.TileM = static_cast<int>(State.range(0));
  Config.TileN = static_cast<int>(State.range(1));
  Config.TileK = static_cast<int>(State.range(2));
  for (auto _ : State) {
    matmulTiled(A.data(), B.data(), C.data(), N, N, N, Config);
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations() * 2 * N * N * N);
}
BENCHMARK(BM_MatmulTiled)
    ->Args({8, 8, 8})
    ->Args({32, 128, 64})
    ->Args({64, 256, 64})
    ->Args({256, 256, 256});

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      return dnnfusion::bench::emitKernelsJson(argv[I + 1]);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
