//===- bench/micro_kernels.cpp - google-benchmark micro kernels -----------------------===//
//
// Micro-benchmarks (google-benchmark) isolating the mechanisms behind the
// end-to-end results: fused vs unfused elementwise chains, data-movement
// folding vs materialization, DFT chunk-size sensitivity, and the tiled
// GEMM configurations the auto-tuner searches.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphBuilder.h"
#include "ops/Kernels.h"
#include "runtime/ExecutionContext.h"
#include "tensor/TensorUtils.h"

#include <benchmark/benchmark.h>

using namespace dnnfusion;

namespace {

Graph elementwiseChain(int64_t N, int Depth) {
  GraphBuilder B(1);
  NodeId H = B.input(Shape({N}));
  for (int I = 0; I < Depth; ++I)
    H = B.unary(I % 3 == 0   ? OpKind::Relu
                : I % 3 == 1 ? OpKind::Sigmoid
                             : OpKind::Neg,
                H);
  B.markOutput(H);
  return B.take();
}

void runModel(benchmark::State &State, const CompiledModel &M) {
  ExecutionContext E(M);
  Rng R(3);
  std::vector<Tensor> Inputs;
  for (NodeId Id : M.InputIds) {
    Tensor T(M.G.node(Id).OutShape);
    fillRandom(T, R);
    Inputs.push_back(std::move(T));
  }
  for (auto _ : State) {
    E.run(Inputs);
    benchmark::ClobberMemory();
  }
}

void BM_ElementwiseChainUnfused(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.EnableFusion = false;
  Opt.EnableOtherOpts = false;
  CompiledModel M =
      cantFail(compileModel(elementwiseChain(State.range(0), 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ElementwiseChainUnfused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ElementwiseChainFused(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  CompiledModel M =
      cantFail(compileModel(elementwiseChain(State.range(0), 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ElementwiseChainFused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

Graph transposeChain(int64_t Side) {
  GraphBuilder B(2);
  NodeId X = B.input(Shape({Side, Side, 16}));
  NodeId T = B.transpose(X, {1, 0, 2});
  NodeId R = B.reshape(T, {Side * Side, 16});
  B.markOutput(B.relu(R));
  return B.take();
}

void BM_MovementFolded(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  CompiledModel M = cantFail(compileModel(transposeChain(State.range(0)), Opt));
  runModel(State, M);
}
BENCHMARK(BM_MovementFolded)->Arg(64)->Arg(160);

void BM_MovementMaterialized(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.EnableOtherOpts = false;
  CompiledModel M = cantFail(compileModel(transposeChain(State.range(0)), Opt));
  runModel(State, M);
}
BENCHMARK(BM_MovementMaterialized)->Arg(64)->Arg(160);

void BM_ChunkSize(benchmark::State &State) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = false;
  Opt.Codegen.ChunkSize = static_cast<int>(State.range(0));
  CompiledModel M = cantFail(compileModel(elementwiseChain(1 << 16, 8), Opt));
  runModel(State, M);
}
BENCHMARK(BM_ChunkSize)->Arg(16)->Arg(64)->Arg(256)->Arg(512);

void BM_MatmulTiled(benchmark::State &State) {
  int64_t N = 256;
  Rng R(5);
  Tensor A(Shape({N, N})), B(Shape({N, N})), C(Shape({N, N}));
  fillRandom(A, R);
  fillRandom(B, R);
  KernelConfig Config;
  Config.TileM = static_cast<int>(State.range(0));
  Config.TileN = static_cast<int>(State.range(1));
  Config.TileK = static_cast<int>(State.range(2));
  for (auto _ : State) {
    matmulTiled(A.data(), B.data(), C.data(), N, N, N, Config);
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations() * 2 * N * N * N);
}
BENCHMARK(BM_MatmulTiled)
    ->Args({8, 8, 8})
    ->Args({32, 128, 64})
    ->Args({64, 256, 64})
    ->Args({256, 256, 256});

} // namespace

BENCHMARK_MAIN();
