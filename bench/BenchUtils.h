//===- bench/BenchUtils.h - Shared harness for the paper's experiments ---*- C++ -*-===//
//
// Part of the DNNFusion reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the per-table/per-figure bench binaries: compiling
/// every execution configuration the paper compares (the four emulated
/// frameworks, OurB, OurB+, DNNFusion), timing medians, and formatting.
///
//===----------------------------------------------------------------------===//

#ifndef DNNFUSION_BENCH_BENCHUTILS_H
#define DNNFUSION_BENCH_BENCHUTILS_H

#include "baselines/FixedPatternFuser.h"
#include "baselines/TasoLike.h"
#include "models/ModelZoo.h"
#include "runtime/CacheSim.h"
#include "runtime/DeviceModel.h"
#include "runtime/ExecutionContext.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "tensor/TensorUtils.h"

#include <algorithm>
#include <cstdio>

namespace dnnfusion {
namespace bench {

/// The execution configurations compared across Tables 5/6 and Figures.
enum class Config {
  MnnLike,
  TvmLike,
  TfliteLike,
  PytorchLike,
  OurB,      ///< This runtime, all fusion off.
  OurBPlus,  ///< This runtime + TVM-style fixed-pattern fusion.
  Dnnf,      ///< Full DNNFusion.
};

inline const char *configName(Config C) {
  switch (C) {
  case Config::MnnLike:
    return "MNN-like";
  case Config::TvmLike:
    return "TVM-like";
  case Config::TfliteLike:
    return "TFLite-like";
  case Config::PytorchLike:
    return "PyTorch-like";
  case Config::OurB:
    return "OurB";
  case Config::OurBPlus:
    return "OurB+";
  case Config::Dnnf:
    return "DNNF";
  }
  return "?";
}

/// Compiles \p Build() under configuration \p C.
inline CompiledModel compileConfig(const std::function<Graph()> &Build,
                                   Config C) {
  Graph G = Build();
  auto WithPattern = [&](BaselineFramework F) {
    FusionPlan Plan = fixedPatternFusion(G, F);
    return cantFail(compileModelWithPlan(std::move(G), std::move(Plan)));
  };
  switch (C) {
  case Config::MnnLike:
    return WithPattern(BaselineFramework::MnnLike);
  case Config::TvmLike:
    return WithPattern(BaselineFramework::TvmLike);
  case Config::TfliteLike:
    return WithPattern(BaselineFramework::TfliteLike);
  case Config::PytorchLike:
    return WithPattern(BaselineFramework::PytorchLike);
  case Config::OurB: {
    CompileOptions Opt;
    Opt.EnableGraphRewriting = false;
    Opt.EnableFusion = false;
    Opt.EnableOtherOpts = false;
    return cantFail(compileModel(std::move(G), Opt));
  }
  case Config::OurBPlus:
    return WithPattern(BaselineFramework::TvmLike);
  case Config::Dnnf:
    return cantFail(compileModel(std::move(G), CompileOptions()));
  }
  return cantFail(compileModel(std::move(G), CompileOptions()));
}

/// Deterministic random inputs for \p M.
inline std::vector<Tensor> makeInputs(const CompiledModel &M, uint64_t Seed) {
  Rng R(Seed);
  std::vector<Tensor> Inputs;
  for (NodeId Id : M.InputIds) {
    Tensor T(M.G.node(Id).OutShape);
    fillRandom(T, R, 0.2f, 1.0f);
    Inputs.push_back(std::move(T));
  }
  return Inputs;
}

/// Sequential-dispatch execution options: the paper's figures measure the
/// per-kernel pipeline itself, so block-level overlap must stay out of
/// their timings unless a bench opts in explicitly.
inline ExecutionOptions sequentialExec() {
  ExecutionOptions Exec;
  Exec.Mode = ExecutionOptions::Schedule::Sequential;
  return Exec;
}

/// Median wall time of \p Repeats runs (after one warm-up). Defaults to
/// strictly sequential block dispatch (see sequentialExec).
inline double medianLatencyMs(const CompiledModel &M, int Repeats = 3,
                              ExecutionStats *Stats = nullptr,
                              const ExecutionOptions &Exec = sequentialExec()) {
  ExecutionContext E(M, Exec);
  std::vector<Tensor> Inputs = makeInputs(M, 11);
  E.run(Inputs, Stats); // Warm-up (also fills Stats counters).
  std::vector<double> Times;
  for (int I = 0; I < Repeats; ++I) {
    WallTimer T;
    E.run(Inputs);
    Times.push_back(T.millis());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

inline std::string fmtMs(double Ms) { return formatString("%.2f", Ms); }
inline std::string fmtMb(int64_t Bytes) {
  return formatString("%.2f", static_cast<double>(Bytes) / 1048576.0);
}
inline std::string fmtCount(int64_t V) {
  return formatString("%lld", static_cast<long long>(V));
}
inline std::string fmtRatio(double V) { return formatString("%.2fx", V); }

inline void printHeading(const char *Title, const char *Detail) {
  std::printf("\n==== %s ====\n%s\n\n", Title, Detail);
}

} // namespace bench
} // namespace dnnfusion

#endif // DNNFUSION_BENCH_BENCHUTILS_H
