//===- bench/BenchUtils.h - Shared harness for the paper's experiments ---*- C++ -*-===//
//
// Part of the DNNFusion reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the per-table/per-figure bench binaries: compiling
/// every execution configuration the paper compares (the four emulated
/// frameworks, OurB, OurB+, DNNFusion), timing medians, and formatting.
///
//===----------------------------------------------------------------------===//

#ifndef DNNFUSION_BENCH_BENCHUTILS_H
#define DNNFUSION_BENCH_BENCHUTILS_H

#include "baselines/FixedPatternFuser.h"
#include "baselines/TasoLike.h"
#include "graph/GraphBuilder.h"
#include "models/ModelZoo.h"
#include "ops/KernelRegistry.h"
#include "ops/OpSchema.h"
#include "runtime/CacheSim.h"
#include "runtime/DeviceModel.h"
#include "runtime/ExecutionContext.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "tensor/TensorUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace dnnfusion {
namespace bench {

/// The execution configurations compared across Tables 5/6 and Figures.
enum class Config {
  MnnLike,
  TvmLike,
  TfliteLike,
  PytorchLike,
  OurB,      ///< This runtime, all fusion off.
  OurBPlus,  ///< This runtime + TVM-style fixed-pattern fusion.
  Dnnf,      ///< Full DNNFusion.
};

inline const char *configName(Config C) {
  switch (C) {
  case Config::MnnLike:
    return "MNN-like";
  case Config::TvmLike:
    return "TVM-like";
  case Config::TfliteLike:
    return "TFLite-like";
  case Config::PytorchLike:
    return "PyTorch-like";
  case Config::OurB:
    return "OurB";
  case Config::OurBPlus:
    return "OurB+";
  case Config::Dnnf:
    return "DNNF";
  }
  return "?";
}

/// Compiles \p Build() under configuration \p C.
inline CompiledModel compileConfig(const std::function<Graph()> &Build,
                                   Config C) {
  Graph G = Build();
  auto WithPattern = [&](BaselineFramework F) {
    FusionPlan Plan = fixedPatternFusion(G, F);
    return cantFail(compileModelWithPlan(std::move(G), std::move(Plan)));
  };
  switch (C) {
  case Config::MnnLike:
    return WithPattern(BaselineFramework::MnnLike);
  case Config::TvmLike:
    return WithPattern(BaselineFramework::TvmLike);
  case Config::TfliteLike:
    return WithPattern(BaselineFramework::TfliteLike);
  case Config::PytorchLike:
    return WithPattern(BaselineFramework::PytorchLike);
  case Config::OurB: {
    CompileOptions Opt;
    Opt.EnableGraphRewriting = false;
    Opt.EnableFusion = false;
    Opt.EnableOtherOpts = false;
    return cantFail(compileModel(std::move(G), Opt));
  }
  case Config::OurBPlus:
    return WithPattern(BaselineFramework::TvmLike);
  case Config::Dnnf:
    return cantFail(compileModel(std::move(G), CompileOptions()));
  }
  return cantFail(compileModel(std::move(G), CompileOptions()));
}

/// Deterministic random inputs for \p M.
inline std::vector<Tensor> makeInputs(const CompiledModel &M, uint64_t Seed) {
  Rng R(Seed);
  std::vector<Tensor> Inputs;
  for (NodeId Id : M.InputIds) {
    Tensor T(M.G.node(Id).OutShape);
    fillRandom(T, R, 0.2f, 1.0f);
    Inputs.push_back(std::move(T));
  }
  return Inputs;
}

/// Sequential-dispatch execution options: the paper's figures measure the
/// per-kernel pipeline itself, so block-level overlap must stay out of
/// their timings unless a bench opts in explicitly.
inline ExecutionOptions sequentialExec() {
  ExecutionOptions Exec;
  Exec.Mode = ExecutionOptions::Schedule::Sequential;
  return Exec;
}

/// Median wall time of \p Repeats runs (after one warm-up). Defaults to
/// strictly sequential block dispatch (see sequentialExec).
inline double medianLatencyMs(const CompiledModel &M, int Repeats = 3,
                              ExecutionStats *Stats = nullptr,
                              const ExecutionOptions &Exec = sequentialExec()) {
  ExecutionContext E(M, Exec);
  std::vector<Tensor> Inputs = makeInputs(M, 11);
  E.run(Inputs, Stats); // Warm-up (also fills Stats counters).
  std::vector<double> Times;
  for (int I = 0; I < Repeats; ++I) {
    WallTimer T;
    E.run(Inputs);
    Times.push_back(T.millis());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

inline std::string fmtMs(double Ms) { return formatString("%.2f", Ms); }
inline std::string fmtMb(int64_t Bytes) {
  return formatString("%.2f", static_cast<double>(Bytes) / 1048576.0);
}
inline std::string fmtCount(int64_t V) {
  return formatString("%lld", static_cast<long long>(V));
}
inline std::string fmtRatio(double V) { return formatString("%.2fx", V); }

inline void printHeading(const char *Title, const char *Detail) {
  std::printf("\n==== %s ====\n%s\n\n", Title, Detail);
}

//===----------------------------------------------------------------------===//
// BENCH_kernels.json: the execution-engine trajectory
//===----------------------------------------------------------------------===//

/// Emits the kernel-engine comparison tracked from PR 5 on: per GEMM/conv
/// shape class naive-vs-packed, per DFT shape interpreted-vs-program, and
/// per zoo model the four engine combinations. Every timed pair is first
/// checked for element-identical outputs — a divergence exits non-zero, so
/// CI fails on correctness regressions, never on timing. Shared by
/// `bench_table6_latency --json` and `bench_micro_kernels --json`.
inline int emitKernelsJson(const char *Path) {
  FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return 1;
  }
  int Guard = 0; // Set non-zero on any packed-vs-naive divergence.
  auto Check = [&](const Tensor &A, const Tensor &B, const char *What) {
    for (int64_t I = 0; I < A.numElements(); ++I)
      if (A.at(I) != B.at(I)) {
        std::fprintf(stderr, "CORRECTNESS GUARD: %s diverges at %lld\n",
                     What, static_cast<long long>(I));
        Guard = 1;
        return;
      }
  };
  // Tolerance-based guard for the fused-attention comparison: the online
  // softmax is a documented bit-identity relaxation (see
  // docs/ARCHITECTURE.md), so fused-vs-unfused pairs are held to the same
  // 2e-3 bound the differential test matrix enforces, not exactness.
  auto CheckClose = [&](const Tensor &A, const Tensor &B, const char *What) {
    for (int64_t I = 0; I < A.numElements(); ++I) {
      float Diff = std::fabs(A.at(I) - B.at(I));
      if (Diff > 2e-3f && Diff > 2e-3f * std::fabs(A.at(I))) {
        std::fprintf(stderr,
                     "CORRECTNESS GUARD: %s diverges at %lld beyond "
                     "tolerance (%g vs %g)\n",
                     What, static_cast<long long>(I),
                     static_cast<double>(A.at(I)),
                     static_cast<double>(B.at(I)));
        Guard = 1;
        return;
      }
    }
  };
  auto Median = [](std::vector<double> T) {
    std::sort(T.begin(), T.end());
    return T[T.size() / 2];
  };
  constexpr int Reps = 5;

  // host_cpus + threads make the committed numbers' machine context
  // machine-readable (kernel timings here are strictly single-threaded;
  // a 1-CPU host caveats any concurrency-derived row).
  std::fprintf(Out,
               "{\n  \"bench\": \"kernels\",\n  \"host_cpus\": %u,\n"
               "  \"threads\": 1,\n",
               std::thread::hardware_concurrency());

  // --- GEMM shape classes: naive row-walk vs packed register-blocked ---
  printHeading("Kernel engines: naive vs packed, interpreted vs program",
               "Every pair is checked element-identical before timing "
               "(the CI perf-smoke correctness guard).");
  TablePrinter TG({"GEMM shape", "Naive ms", "Packed ms", "Speedup"});
  std::fprintf(Out, "  \"gemm_shapes\": [\n");
  const struct {
    const char *Label;
    int64_t M, N, K;
  } GemmShapes[] = {
      {"attention 48x96x96", 48, 96, 96},
      {"projection 64x256x256", 64, 256, 256},
      {"ffn 64x3072x768", 64, 3072, 768},
  };
  Rng R(11);
  for (size_t S = 0; S < sizeof(GemmShapes) / sizeof(GemmShapes[0]); ++S) {
    const auto &Sh = GemmShapes[S];
    Tensor A(Shape({Sh.M, Sh.K})), B(Shape({Sh.K, Sh.N}));
    Tensor CN(Shape({Sh.M, Sh.N})), CP(Shape({Sh.M, Sh.N}));
    fillRandom(A, R);
    fillRandom(B, R);
    std::vector<const Tensor *> In{&A, &B};
    KernelConfig Naive;
    Naive.UsePackedGemm = false;
    KernelConfig Packed;
    auto Time = [&](Tensor &C, const KernelConfig &Cfg) {
      std::vector<double> T;
      detail::runMatMulKernel(OpKind::MatMul, AttrMap(), In, C, Cfg);
      for (int I = 0; I < Reps; ++I) {
        WallTimer W;
        detail::runMatMulKernel(OpKind::MatMul, AttrMap(), In, C, Cfg);
        T.push_back(W.millis());
      }
      return Median(T);
    };
    double NaiveMs = Time(CN, Naive), PackedMs = Time(CP, Packed);
    Check(CN, CP, Sh.Label);
    std::fprintf(Out,
                 "    {\"shape\": \"%s\", \"naive_ms\": %.4f, "
                 "\"packed_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 Sh.Label, NaiveMs, PackedMs,
                 PackedMs > 0 ? NaiveMs / PackedMs : 0.0,
                 S + 1 < sizeof(GemmShapes) / sizeof(GemmShapes[0]) ? ","
                                                                    : "");
    TG.addRow({Sh.Label, fmtMs(NaiveMs), fmtMs(PackedMs),
               fmtRatio(NaiveMs / PackedMs)});
  }
  std::fprintf(Out, "  ],\n");
  TG.print();

  // --- Conv shape classes: direct vs im2col + packed ---
  TablePrinter TC({"Conv shape", "Direct ms", "Packed ms", "Speedup"});
  std::fprintf(Out, "  \"conv_shapes\": [\n");
  const struct {
    const char *Label;
    Shape X, W;
    std::vector<int64_t> Strides, Pads;
  } ConvShapes[] = {
      {"3x3 64ch 56sq", Shape({1, 64, 56, 56}), Shape({64, 64, 3, 3}),
       {1, 1}, {1, 1}},
      {"1x1 128->256 28sq", Shape({1, 128, 28, 28}), Shape({256, 128, 1, 1}),
       {1, 1}, {0, 0}},
      {"3d 3x3x3 16ch", Shape({1, 16, 8, 24, 24}), Shape({32, 16, 3, 3, 3}),
       {1, 1, 1}, {1, 1, 1}},
  };
  for (size_t S = 0; S < sizeof(ConvShapes) / sizeof(ConvShapes[0]); ++S) {
    const auto &Sh = ConvShapes[S];
    Tensor X(Sh.X), W(Sh.W);
    fillRandom(X, R);
    fillRandom(W, R);
    AttrMap Attrs;
    Attrs.set("strides", Sh.Strides);
    Attrs.set("pads", Sh.Pads);
    Shape OutShape = inferShape(OpKind::Conv, Attrs, {Sh.X, Sh.W});
    Tensor CN(OutShape), CP(OutShape);
    std::vector<const Tensor *> In{&X, &W};
    KernelConfig Naive;
    Naive.UsePackedGemm = false;
    auto Time = [&](Tensor &C, const KernelConfig &Cfg) {
      std::vector<double> T;
      detail::runConvKernel(OpKind::Conv, Attrs, In, C, Cfg);
      for (int I = 0; I < Reps; ++I) {
        WallTimer Wt;
        detail::runConvKernel(OpKind::Conv, Attrs, In, C, Cfg);
        T.push_back(Wt.millis());
      }
      return Median(T);
    };
    double DirectMs = Time(CN, Naive), PackedMs = Time(CP, KernelConfig());
    Check(CN, CP, Sh.Label);
    std::fprintf(Out,
                 "    {\"shape\": \"%s\", \"direct_ms\": %.4f, "
                 "\"packed_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 Sh.Label, DirectMs, PackedMs,
                 PackedMs > 0 ? DirectMs / PackedMs : 0.0,
                 S + 1 < sizeof(ConvShapes) / sizeof(ConvShapes[0]) ? ","
                                                                    : "");
    TC.addRow({Sh.Label, fmtMs(DirectMs), fmtMs(PackedMs),
               fmtRatio(DirectMs / PackedMs)});
  }
  std::fprintf(Out, "  ],\n");
  TC.print();

  // --- Kernel registry: per-tier timings on the same shape classes ---
  // The registry's dispatch dimension: each GEMM/conv shape class timed at
  // every forced tier (a tier the host cannot execute clamps down, and the
  // row records the level that actually resolved). Guards: scalar-vs-avx2
  // must be element-identical (the bit-exact tier contract); avx2fma is
  // held to the documented FMA tolerance.
  {
    KernelConfig AutoCfg;
    std::fprintf(Out,
                 "  \"kernel_dispatch\": {\n"
                 "    \"compiled_simd\": %s,\n"
                 "    \"host_avx2\": %s,\n"
                 "    \"host_fma\": %s,\n"
                 "    \"auto_level\": \"%s\",\n",
                 simdKernelsCompiledIn() ? "true" : "false",
                 (dispatchFeatureMask() & CpuFeatureAvx2) ? "true" : "false",
                 (dispatchFeatureMask() & CpuFeatureFma) ? "true" : "false",
                 kernelLevelName(effectiveKernelLevel(AutoCfg)));
    auto ResolvedName = [](int Force) {
      return kernelLevelName(resolveKernelLevel(Force, dispatchFeatureMask()));
    };
    TablePrinter TR({"Dispatch shape", "Scalar ms", "Avx2 ms", "Avx2fma ms",
                     "Avx2 speedup"});
    auto TierRow = [&](const char *Kind, const char *Label, OpKind Op,
                       const AttrMap &Attrs,
                       const std::vector<const Tensor *> &In,
                       const Shape &OutShape, bool Last) {
      auto TimeAt = [&](int Force, Tensor &C) {
        KernelConfig Cfg;
        Cfg.ForceKernelLevel = Force;
        std::vector<double> T;
        auto Run = [&]() {
          if (Op == OpKind::Conv)
            detail::runConvKernel(Op, Attrs, In, C, Cfg);
          else
            detail::runMatMulKernel(Op, Attrs, In, C, Cfg);
        };
        Run();
        for (int I = 0; I < Reps; ++I) {
          WallTimer W;
          Run();
          T.push_back(W.millis());
        }
        return Median(T);
      };
      Tensor CS(OutShape), CV(OutShape), CF(OutShape);
      double ScalarMs = TimeAt(0, CS);
      double Avx2Ms = TimeAt(1, CV);
      double FmaMs = TimeAt(2, CF);
      Check(CS, CV, Label);      // Bit-exact tier contract.
      CheckClose(CS, CF, Label); // FMA rounding stays within tolerance.
      std::fprintf(Out,
                   "      {\"kind\": \"%s\", \"shape\": \"%s\", "
                   "\"scalar_ms\": %.4f, \"avx2_ms\": %.4f, "
                   "\"avx2fma_ms\": %.4f, \"avx2_speedup\": %.3f, "
                   "\"avx2_resolved\": \"%s\", \"avx2fma_resolved\": "
                   "\"%s\"}%s\n",
                   Kind, Label, ScalarMs, Avx2Ms, FmaMs,
                   Avx2Ms > 0 ? ScalarMs / Avx2Ms : 0.0, ResolvedName(1),
                   ResolvedName(2), Last ? "" : ",");
      TR.addRow({Label, fmtMs(ScalarMs), fmtMs(Avx2Ms), fmtMs(FmaMs),
                 fmtRatio(ScalarMs / Avx2Ms)});
    };
    std::fprintf(Out, "    \"shapes\": [\n");
    for (size_t S = 0; S < sizeof(GemmShapes) / sizeof(GemmShapes[0]); ++S) {
      const auto &Sh = GemmShapes[S];
      Tensor A(Shape({Sh.M, Sh.K})), B(Shape({Sh.K, Sh.N}));
      fillRandom(A, R);
      fillRandom(B, R);
      TierRow("gemm", Sh.Label, OpKind::MatMul, AttrMap(), {&A, &B},
              Shape({Sh.M, Sh.N}), false);
    }
    for (size_t S = 0; S < sizeof(ConvShapes) / sizeof(ConvShapes[0]); ++S) {
      const auto &Sh = ConvShapes[S];
      Tensor X(Sh.X), W(Sh.W);
      fillRandom(X, R);
      fillRandom(W, R);
      AttrMap Attrs;
      Attrs.set("strides", Sh.Strides);
      Attrs.set("pads", Sh.Pads);
      Shape OutShape = inferShape(OpKind::Conv, Attrs, {Sh.X, Sh.W});
      TierRow("conv", Sh.Label, OpKind::Conv, Attrs, {&X, &W}, OutShape,
              S + 1 == sizeof(ConvShapes) / sizeof(ConvShapes[0]));
    }
    std::fprintf(Out, "    ]\n  },\n");
    TR.print();
  }

  // --- Fused expressions: tree-walk interpreter vs compiled program ---
  TablePrinter TD({"DFT shape", "Treewalk ms", "Program ms", "Speedup"});
  std::fprintf(Out, "  \"dft\": [\n");
  {
    auto BuildChain = [](uint64_t Seed, bool WithTranspose) {
      GraphBuilder B(Seed);
      NodeId H = B.input(Shape({64, 32, 32}));
      if (WithTranspose)
        H = B.reshape(B.transpose(H, {1, 0, 2}), {32 * 64, 32});
      for (int I = 0; I < 8; ++I)
        H = B.unary(I % 3 == 0   ? OpKind::Relu
                    : I % 3 == 1 ? OpKind::LeakyRelu
                                 : OpKind::Square,
                    H);
      B.markOutput(H);
      return B.take();
    };
    const struct {
      const char *Label;
      bool Transpose;
    } DftShapes[] = {
        {"eltwise-8 64k", false},
        {"transpose+eltwise-8 64k", true},
    };
    for (size_t S = 0; S < sizeof(DftShapes) / sizeof(DftShapes[0]); ++S) {
      CompileOptions Opt;
      Opt.EnableGraphRewriting = false; // Keep the whole chain literal.
      CompiledModel M = cantFail(
          compileModel(BuildChain(3 + S, DftShapes[S].Transpose), Opt));
      std::vector<Tensor> Inputs = makeInputs(M, 7);
      auto Time = [&](bool Programs, std::vector<Tensor> &OutTensors) {
        CompiledModel MV = M;
        MV.Codegen.UseCompiledPrograms = Programs;
        ExecutionContext E(MV, sequentialExec());
        OutTensors = E.run(Inputs);
        std::vector<double> T;
        for (int I = 0; I < Reps; ++I) {
          WallTimer Wt;
          E.run(Inputs);
          T.push_back(Wt.millis());
        }
        return Median(T);
      };
      std::vector<Tensor> OutTree, OutProg;
      double TreeMs = Time(false, OutTree);
      double ProgMs = Time(true, OutProg);
      Check(OutTree[0], OutProg[0], DftShapes[S].Label);
      std::fprintf(Out,
                   "    {\"shape\": \"%s\", \"treewalk_ms\": %.4f, "
                   "\"program_ms\": %.4f, \"speedup\": %.3f}%s\n",
                   DftShapes[S].Label, TreeMs, ProgMs,
                   ProgMs > 0 ? TreeMs / ProgMs : 0.0,
                   S + 1 < sizeof(DftShapes) / sizeof(DftShapes[0]) ? ","
                                                                    : "");
      TD.addRow({DftShapes[S].Label, fmtMs(TreeMs), fmtMs(ProgMs),
                 fmtRatio(TreeMs / ProgMs)});
    }
  }
  std::fprintf(Out, "  ],\n");
  TD.print();

  // --- Transformer fusion: blocked attention/layernorm + GEMM epilogues ---
  // Two toggles, two guarantees: FuseAttention/FuseNorm trade bit-identity
  // for a single softmax pass (tolerance guard), FuseGemmEpilogue folds
  // eltwise tails into the GEMM loop with no numeric change (exact guard).
  TablePrinter TF({"Model", "Unfused ms", "Fused ms", "Speedup",
                   "Epilogue-off ms"});
  std::fprintf(Out, "  \"transformer_fusion\": [\n");
  const char *TfModels[] = {"TinyBERT", "BERT-base", "GPT-2"};
  for (size_t S = 0; S < sizeof(TfModels) / sizeof(TfModels[0]); ++S) {
    auto WithToggles = [&](bool Attention, bool Epilogue) {
      CompileOptions Opt;
      Opt.Codegen.FuseAttention = Attention;
      Opt.Codegen.FuseNorm = Attention;
      Opt.Codegen.FuseGemmEpilogue = Epilogue;
      return cantFail(compileModel(buildModel(TfModels[S]), Opt));
    };
    CompiledModel Fused = WithToggles(true, true);
    CompiledModel Unfused = WithToggles(false, true);
    CompiledModel NoEpilogue = WithToggles(true, false);
    std::vector<Tensor> Inputs = makeInputs(Fused, 11);
    {
      ExecutionContext EF(Fused, sequentialExec());
      ExecutionContext EU(Unfused, sequentialExec());
      ExecutionContext EN(NoEpilogue, sequentialExec());
      std::vector<Tensor> GotF = EF.run(Inputs);
      std::vector<Tensor> GotU = EU.run(Inputs);
      std::vector<Tensor> GotN = EN.run(Inputs);
      for (size_t O = 0; O < GotF.size(); ++O) {
        CheckClose(GotU[O], GotF[O], TfModels[S]);
        Check(GotF[O], GotN[O], TfModels[S]); // Epilogue fold is exact.
      }
    }
    double FusedMs = medianLatencyMs(Fused);
    double UnfusedMs = medianLatencyMs(Unfused);
    double NoEpilogueMs = medianLatencyMs(NoEpilogue);
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"unfused_ms\": %.4f, "
                 "\"fused_ms\": %.4f, \"speedup\": %.3f, "
                 "\"epilogue_off_ms\": %.4f}%s\n",
                 TfModels[S], UnfusedMs, FusedMs,
                 FusedMs > 0 ? UnfusedMs / FusedMs : 0.0, NoEpilogueMs,
                 S + 1 < sizeof(TfModels) / sizeof(TfModels[0]) ? "," : "");
    std::fflush(Out);
    TF.addRow({TfModels[S], fmtMs(UnfusedMs), fmtMs(FusedMs),
               fmtRatio(UnfusedMs / FusedMs), fmtMs(NoEpilogueMs)});
  }
  std::fprintf(Out, "  ],\n");
  TF.print();

  // --- Zoo models: the four engine combinations ---
  TablePrinter TM({"Model", "Interp+Naive", "Program", "Packed",
                   "Program+Packed", "Speedup"});
  std::fprintf(Out, "  \"models\": [\n");
  const char *Models[] = {"EfficientNet-B0", "YOLO-V4",      "S3D",
                          "U-Net",           "Faster R-CNN", "Mask R-CNN",
                          "GPT-2"};
  for (size_t S = 0; S < sizeof(Models) / sizeof(Models[0]); ++S) {
    auto Variant = [&](bool Programs, bool Packed) {
      CompileOptions Opt;
      Opt.Codegen.UseCompiledPrograms = Programs;
      Opt.Codegen.Kernels.UsePackedGemm = Packed;
      return cantFail(compileModel(buildModel(Models[S]), Opt));
    };
    CompiledModel Legacy = Variant(false, false);
    CompiledModel ProgOnly = Variant(true, false);
    CompiledModel PackOnly = Variant(false, true);
    CompiledModel Full = Variant(true, true);
    // Correctness guard: all four engines must agree bit-for-bit.
    std::vector<Tensor> Inputs = makeInputs(Legacy, 11);
    {
      ExecutionContext E0(Legacy, sequentialExec());
      std::vector<Tensor> Want = E0.run(Inputs);
      for (CompiledModel *MV : {&ProgOnly, &PackOnly, &Full}) {
        ExecutionContext EV(*MV, sequentialExec());
        std::vector<Tensor> Got = EV.run(Inputs);
        for (size_t O = 0; O < Want.size(); ++O)
          Check(Want[O], Got[O], Models[S]);
      }
    }
    double LegacyMs = medianLatencyMs(Legacy);
    double ProgMs = medianLatencyMs(ProgOnly);
    double PackMs = medianLatencyMs(PackOnly);
    double FullMs = medianLatencyMs(Full);
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"interpreted_naive_ms\": %.4f, "
                 "\"program_ms\": %.4f, \"packed_ms\": %.4f, "
                 "\"program_packed_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 Models[S], LegacyMs, ProgMs, PackMs, FullMs,
                 FullMs > 0 ? LegacyMs / FullMs : 0.0,
                 S + 1 < sizeof(Models) / sizeof(Models[0]) ? "," : "");
    std::fflush(Out);
    TM.addRow({Models[S], fmtMs(LegacyMs), fmtMs(ProgMs), fmtMs(PackMs),
               fmtMs(FullMs), fmtRatio(LegacyMs / FullMs)});
  }
  std::fprintf(Out, "  ],\n  \"correctness_guard\": \"%s\"\n}\n",
               Guard == 0 ? "pass" : "FAIL");
  std::fclose(Out);
  TM.print();
  std::printf("\nJSON written to %s%s\n", Path,
              Guard ? " (CORRECTNESS GUARD FAILED)" : "");
  return Guard;
}

} // namespace bench
} // namespace dnnfusion

#endif // DNNFUSION_BENCH_BENCHUTILS_H
