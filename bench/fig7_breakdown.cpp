//===- bench/fig7_breakdown.cpp - Paper Figure 7 ---------------------------------------===//
//
// Optimization breakdown: speedup over OurB when enabling graph rewriting
// (GR), fusion (Fuse), and the other fusion-related optimizations (Other)
// incrementally, plus the no-rewriting ablation (Fuse+Other), on CPU
// (measured) and the modeled mobile GPU.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

CompiledModel compileVariant(const std::function<Graph()> &Build, bool Gr,
                             bool Fuse, bool Other) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = Gr;
  Opt.EnableFusion = Fuse;
  Opt.EnableOtherOpts = Other;
  return compileModel(Build(), Opt);
}

} // namespace

int main() {
  printHeading("Figure 7: optimization breakdown (speedup over OurB)",
               "GR = graph rewriting, Fuse = operator fusion, Other = "
               "intra/inter-block data-movement optimizations.");
  struct Variant {
    const char *Name;
    bool Gr, Fuse, Other;
  };
  const Variant Variants[] = {
      {"GR", true, false, false},
      {"GR+Fuse", true, true, false},
      {"GR+Fuse+Other", true, true, true},
      {"Fuse+Other", false, true, true},
  };
  DeviceProfile Gpu = snapdragon865Gpu();
  DeviceProfile Cpu = snapdragon865Cpu();

  for (const char *Target : {"cpu (measured)", "gpu (modeled)"}) {
    bool IsGpu = std::string(Target).rfind("gpu", 0) == 0;
    std::vector<std::string> Header = {"Model"};
    for (const Variant &V : Variants)
      Header.push_back(V.Name);
    TablePrinter T(Header);
    for (const char *Name :
         {"EfficientNet-B0", "YOLO-V4", "S3D", "GPT-2"}) {
      auto Build = [&] { return buildModel(Name); };
      CompiledModel Base = compileVariant(Build, false, false, false);
      double BaseMs = IsGpu ? modelLatencyMs(Base, Gpu)
                            : medianLatencyMs(Base);
      (void)Cpu;
      std::vector<std::string> Row = {Name};
      for (const Variant &V : Variants) {
        CompiledModel M = compileVariant(Build, V.Gr, V.Fuse, V.Other);
        double Ms = IsGpu ? modelLatencyMs(M, Gpu) : medianLatencyMs(M);
        Row.push_back(fmtRatio(BaseMs / Ms));
      }
      T.addRow(Row);
      std::fflush(stdout);
    }
    std::printf("-- %s --\n", Target);
    T.print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): each increment helps; Fuse is the "
              "largest single contributor; GR's hidden value shows in the "
              "GR+Fuse+Other vs Fuse+Other gap (rewriting enables extra "
              "fusion).\n");
  return 0;
}
