//===- bench/fig7_breakdown.cpp - Paper Figure 7 ---------------------------------------===//
//
// Optimization breakdown: speedup over OurB when enabling graph rewriting
// (GR), fusion (Fuse), and the other fusion-related optimizations (Other)
// incrementally, plus the no-rewriting ablation (Fuse+Other), on CPU
// (measured) and the modeled mobile GPU.
//
// `--json <path>` switches to the end-to-end latency tracker instead: the
// fully optimized pipeline timed under sequential vs wavefront block
// dispatch per zoo model, emitted as machine-readable JSON (BENCH_e2e.json
// in CI, uploaded as an artifact — the perf trajectory of the runtime).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstring>

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

CompiledModel compileVariant(const std::function<Graph()> &Build, bool Gr,
                             bool Fuse, bool Other) {
  CompileOptions Opt;
  Opt.EnableGraphRewriting = Gr;
  Opt.EnableFusion = Fuse;
  Opt.EnableOtherOpts = Other;
  return cantFail(compileModel(Build(), Opt));
}

/// Emits per-model sequential-vs-wavefront wall latency as JSON. Models
/// with wide-branching structure (R-CNNs, inception-style 3D CNNs) are the
/// ones where the wavefront dimension can pay off; narrow chains are
/// included as controls and to keep the trajectory honest.
int emitJson(const char *Path) {
  const char *Models[] = {"EfficientNet-B0", "YOLO-V4",      "S3D",
                          "U-Net",           "Faster R-CNN", "Mask R-CNN",
                          "GPT-2"};
  // The wavefront needs >1 thread to show a speedup; size the pool like
  // the paper's 8-thread mobile CPU regardless of this host's default.
  ThreadPool Pool(8);

  ExecutionOptions Seq = sequentialExec();
  Seq.Pool = &Pool;
  ExecutionOptions Wave;
  Wave.Pool = &Pool;

  FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"bench\": \"e2e\",\n  \"threads\": %u,\n"
               "  \"host_cpus\": %u,\n  \"models\": [\n",
               Pool.numThreads(), std::thread::hardware_concurrency());
  TablePrinter T({"Model", "Seq ms", "Wave ms", "Speedup", "Levels",
                  "MaxWidth"});
  for (size_t I = 0; I < sizeof(Models) / sizeof(Models[0]); ++I) {
    const char *Name = Models[I];
    CompiledModel M =
        cantFail(compileModel(buildModel(Name), CompileOptions()));
    double SeqMs = medianLatencyMs(M, 5, nullptr, Seq);
    double WaveMs = medianLatencyMs(M, 5, nullptr, Wave);
    double Speedup = WaveMs > 0.0 ? SeqMs / WaveMs : 0.0;
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"sequential_ms\": %.4f, "
                 "\"wavefront_ms\": %.4f, \"speedup\": %.3f, "
                 "\"levels\": %lld, \"max_width\": %lld, "
                 "\"blocks\": %lld}%s\n",
                 Name, SeqMs, WaveMs, Speedup,
                 static_cast<long long>(M.Schedule.numLevels()),
                 static_cast<long long>(M.Schedule.maxWidth()),
                 static_cast<long long>(M.Plan.fusedLayerCount()),
                 I + 1 < sizeof(Models) / sizeof(Models[0]) ? "," : "");
    T.addRow({Name, fmtMs(SeqMs), fmtMs(WaveMs), fmtRatio(Speedup),
              fmtCount(M.Schedule.numLevels()),
              fmtCount(M.Schedule.maxWidth())});
    std::fflush(Out);
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  printHeading("End-to-end latency: sequential vs wavefront dispatch",
               "Written as JSON for the perf trajectory; speedups need "
               "real hardware parallelism (single-core hosts show ~1x).");
  T.print();
  std::printf("\nJSON written to %s\n", Path);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      return emitJson(argv[I + 1]);
  printHeading("Figure 7: optimization breakdown (speedup over OurB)",
               "GR = graph rewriting, Fuse = operator fusion, Other = "
               "intra/inter-block data-movement optimizations.");
  struct Variant {
    const char *Name;
    bool Gr, Fuse, Other;
  };
  const Variant Variants[] = {
      {"GR", true, false, false},
      {"GR+Fuse", true, true, false},
      {"GR+Fuse+Other", true, true, true},
      {"Fuse+Other", false, true, true},
  };
  DeviceProfile Gpu = snapdragon865Gpu();
  DeviceProfile Cpu = snapdragon865Cpu();

  for (const char *Target : {"cpu (measured)", "gpu (modeled)"}) {
    bool IsGpu = std::string(Target).rfind("gpu", 0) == 0;
    std::vector<std::string> Header = {"Model"};
    for (const Variant &V : Variants)
      Header.push_back(V.Name);
    TablePrinter T(Header);
    for (const char *Name :
         {"EfficientNet-B0", "YOLO-V4", "S3D", "GPT-2"}) {
      auto Build = [&] { return buildModel(Name); };
      CompiledModel Base = compileVariant(Build, false, false, false);
      double BaseMs = IsGpu ? modelLatencyMs(Base, Gpu)
                            : medianLatencyMs(Base);
      (void)Cpu;
      std::vector<std::string> Row = {Name};
      for (const Variant &V : Variants) {
        CompiledModel M = compileVariant(Build, V.Gr, V.Fuse, V.Other);
        double Ms = IsGpu ? modelLatencyMs(M, Gpu) : medianLatencyMs(M);
        Row.push_back(fmtRatio(BaseMs / Ms));
      }
      T.addRow(Row);
      std::fflush(stdout);
    }
    std::printf("-- %s --\n", Target);
    T.print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): each increment helps; Fuse is the "
              "largest single contributor; GR's hidden value shows in the "
              "GR+Fuse+Other vs Fuse+Other gap (rewriting enables extra "
              "fusion).\n");
  return 0;
}
