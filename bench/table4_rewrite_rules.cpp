//===- bench/table4_rewrite_rules.cpp - Paper Table 4 --------------------------------===//
//
// Graph rewriting with mathematical properties: for each representative
// rule the bench builds the "without rewriting" expression on m x n
// tensors, applies the rewriting pass, and reports measured #FLOPs before
// and after (the paper's metric) plus numerical agreement.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "core/GraphRewriter.h"
#include "graph/GraphBuilder.h"
#include "runtime/ExecutionContext.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

constexpr int64_t M = 64, N = 64;

struct Sample {
  const char *Property;
  const char *Expression;
  Graph G;
};

NodeId reduceSum(GraphBuilder &B, NodeId X) {
  return B.op(OpKind::ReduceSum, {X},
              AttrMap()
                  .set("axes", std::vector<int64_t>{1})
                  .set("keepdims", int64_t(1)));
}

std::vector<Sample> buildSamples() {
  std::vector<Sample> Out;
  {
    GraphBuilder B(1);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N}));
    B.markOutput(B.mul(B.unary(OpKind::Reciprocal, A),
                       B.unary(OpKind::Reciprocal, B.mul(A, Bv))));
    Out.push_back({"Associative", "Recip(A)*Recip(A*B)", B.take()});
  }
  {
    GraphBuilder B(2);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N})),
           C = B.input(Shape({M, N}));
    NodeId S = B.unary(OpKind::Sqrt, Bv);
    B.markOutput(B.mul(B.mul(A, S), B.mul(S, C)));
    Out.push_back({"Associative", "(A*sqrt(B))*(sqrt(B)*C)", B.take()});
  }
  {
    GraphBuilder B(3);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N})),
           C = B.input(Shape({M, N}));
    B.markOutput(B.mul(B.mul(B.unary(OpKind::Abs, A), Bv),
                       B.unary(OpKind::Abs, C)));
    Out.push_back({"Associative", "Abs(A)*B*Abs(C)", B.take()});
  }
  {
    GraphBuilder B(4);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N})),
           C = B.input(Shape({M, N}));
    NodeId R = reduceSum(B, Bv);
    B.markOutput(B.mul(B.mul(A, R), B.mul(R, C)));
    Out.push_back({"Associative", "(A*RSum(B))*(RSum(B)*C)", B.take()});
  }
  {
    GraphBuilder B(5);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N})),
           C = B.input(Shape({M, N}));
    B.markOutput(B.add(B.mul(A, C), B.mul(Bv, C)));
    Out.push_back({"Distributive", "A*C + B*C", B.take()});
  }
  {
    GraphBuilder B(6);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N}));
    B.markOutput(B.add(A, B.mul(A, Bv)));
    Out.push_back({"Distributive", "A + A*B", B.take()});
  }
  {
    GraphBuilder B(7);
    NodeId A = B.input(Shape({M, N})), Bv = B.input(Shape({M, N})),
           C = B.input(Shape({M, N}));
    NodeId S = B.add(A, Bv);
    B.markOutput(B.sub(B.unary(OpKind::Square, S), B.mul(S, C)));
    Out.push_back({"Distributive", "Square(A+B) - (A+B)*C", B.take()});
  }
  {
    GraphBuilder B(8);
    NodeId A = B.input(Shape({M, N}));
    NodeId Sh = B.op(OpKind::BitShift, {A},
                     AttrMap().set("bits", int64_t(2)).set("direction",
                                                           int64_t(0)));
    B.markOutput(B.op(OpKind::ReduceSum, {Sh},
                      AttrMap()
                          .set("axes", std::vector<int64_t>{1})
                          .set("keepdims", int64_t(0))));
    Out.push_back({"Commutative", "RSum(BitShift(A))", B.take()});
  }
  {
    GraphBuilder B(9);
    NodeId A = B.input(Shape({M, N}));
    B.markOutput(B.op(OpKind::ReduceProd, {B.unary(OpKind::Exp, A)},
                      AttrMap()
                          .set("axes", std::vector<int64_t>{1})
                          .set("keepdims", int64_t(0))));
    Out.push_back({"Commutative", "RProd(Exp(A))", B.take()});
  }
  return Out;
}

bool outputsAgree(const Graph &Before, const Graph &After) {
  Rng R(77);
  auto Run = [&](const Graph &G) {
    CompileOptions Opt;
    Opt.EnableGraphRewriting = false;
    Opt.EnableFusion = false;
    Opt.EnableOtherOpts = false;
    CompiledModel Model = cantFail(compileModel(G, Opt));
    ExecutionContext E(Model);
    Rng Ri(7);
    std::vector<Tensor> Inputs;
    for (NodeId Id : Model.InputIds) {
      Tensor T(Model.G.node(Id).OutShape);
      fillRandom(T, Ri, 0.2f, 1.0f);
      Inputs.push_back(std::move(T));
    }
    return E.run(Inputs);
  };
  std::vector<Tensor> A = Run(Before), B = Run(After);
  for (size_t I = 0; I < A.size(); ++I)
    if (!allClose(B[I], A[I], 5e-3f, 5e-3f))
      return false;
  return true;
}

} // namespace

int main() {
  printHeading("Table 4: graph rewriting with mathematical properties",
               formatString("Measured on %lldx%lld tensors. Registry: %d "
                            "associative, %d distributive, %d commutative "
                            "rules (+%d canonicalization, %d folding).",
                            static_cast<long long>(M),
                            static_cast<long long>(N),
                            countRules(RuleCategory::Associative),
                            countRules(RuleCategory::Distributive),
                            countRules(RuleCategory::Commutative),
                            countRules(RuleCategory::Canonicalization),
                            countRules(RuleCategory::Folding))
                   .c_str());
  TablePrinter T({"Property", "Without rewriting", "#FLOPS before",
                  "#FLOPS after", "Reduction", "Outputs agree"});
  for (Sample &S : buildSamples()) {
    Graph Before = S.G; // Copy for the semantic check.
    RewriteStats Stats = rewriteGraph(S.G);
    T.addRow({S.Property, S.Expression, fmtCount(Stats.FlopsBefore),
              fmtCount(Stats.FlopsAfter),
              formatString("%.0f%%", 100.0 *
                                         static_cast<double>(Stats.FlopsBefore -
                                                             Stats.FlopsAfter) /
                                         static_cast<double>(Stats.FlopsBefore)),
              outputsAgree(Before, S.G) ? "yes" : "NO"});
  }
  T.print();
  return 0;
}
