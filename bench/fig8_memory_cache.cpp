//===- bench/fig8_memory_cache.cpp - Paper Figure 8 ------------------------------------===//
//
// Memory and cache-miss analysis on YOLO-V4: memory accesses (MA), memory
// consumption (MC), and simulated cache/TLB misses per framework,
// normalized to DNNF (values > 1 = worse than DNNF, as in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

struct Measurement {
  int64_t MemoryAccesses;
  int64_t MemoryConsumption;
  std::vector<int64_t> CpuMisses; // L1, L2, L3, L1-TLB, L2-TLB.
  std::vector<int64_t> GpuMisses; // L1, L2.
};

Measurement measure(const CompiledModel &M) {
  Measurement R;
  ExecutionStats Stats;
  ExecutionContext E(M);
  std::vector<Tensor> Inputs = makeInputs(M, 3);
  E.run(Inputs, &Stats);
  R.MemoryAccesses = Stats.MainBytesRead + Stats.MainBytesWritten;
  R.MemoryConsumption = M.Memory.ArenaBytes + M.Memory.ScratchBytes;

  CacheSim CpuCache(mobileCpuCacheConfig());
  simulateModelTraffic(M, CpuCache);
  CacheSim CpuTlb(mobileCpuTlbConfig());
  simulateModelTraffic(M, CpuTlb);
  for (int L = 0; L < CpuCache.numLevels(); ++L)
    R.CpuMisses.push_back(CpuCache.misses(L));
  for (int L = 0; L < CpuTlb.numLevels(); ++L)
    R.CpuMisses.push_back(CpuTlb.misses(L));

  CacheSim GpuCache(mobileGpuCacheConfig());
  simulateModelTraffic(M, GpuCache);
  for (int L = 0; L < GpuCache.numLevels(); ++L)
    R.GpuMisses.push_back(GpuCache.misses(L));
  return R;
}

std::string normalized(int64_t V, int64_t Dnnf) {
  if (Dnnf == 0)
    return "-";
  return formatString("%.2f", static_cast<double>(V) /
                                  static_cast<double>(Dnnf));
}

} // namespace

int main() {
  printHeading("Figure 8: memory and cache analysis (YOLO-V4)",
               "MA = main-memory bytes moved, MC = peak footprint; cache "
               "and TLB misses from the set-associative LRU simulator. All "
               "values normalized to DNNF (higher = worse).");
  auto Build = [] { return buildModel("YOLO-V4"); };
  const Config Configs[] = {Config::MnnLike, Config::TvmLike,
                            Config::TfliteLike, Config::PytorchLike,
                            Config::Dnnf};
  std::vector<Measurement> Results;
  for (Config C : Configs)
    Results.push_back(measure(compileConfig(Build, C)));
  const Measurement &Dnnf = Results.back();

  TablePrinter Cpu({"Framework", "MA", "MC", "L1", "L2", "L3", "L1-TLB",
                    "L2-TLB"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const Measurement &R = Results[I];
    Cpu.addRow({configName(Configs[I]),
                normalized(R.MemoryAccesses, Dnnf.MemoryAccesses),
                normalized(R.MemoryConsumption, Dnnf.MemoryConsumption),
                normalized(R.CpuMisses[0], Dnnf.CpuMisses[0]),
                normalized(R.CpuMisses[1], Dnnf.CpuMisses[1]),
                normalized(R.CpuMisses[2], Dnnf.CpuMisses[2]),
                normalized(R.CpuMisses[3], Dnnf.CpuMisses[3]),
                normalized(R.CpuMisses[4], Dnnf.CpuMisses[4])});
  }
  std::printf("-- mobile CPU geometry --\n");
  Cpu.print();

  TablePrinter Gpu({"Framework", "MA", "MC", "L1", "L2"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const Measurement &R = Results[I];
    Gpu.addRow({configName(Configs[I]),
                normalized(R.MemoryAccesses, Dnnf.MemoryAccesses),
                normalized(R.MemoryConsumption, Dnnf.MemoryConsumption),
                normalized(R.GpuMisses[0], Dnnf.GpuMisses[0]),
                normalized(R.GpuMisses[1], Dnnf.GpuMisses[1])});
  }
  std::printf("\n-- mobile GPU geometry --\n");
  Gpu.print();
  std::printf("\nExpected shape (paper): every framework sits above 1.0 on "
              "every column (DNNF eliminates the most intermediate "
              "materialization).\n");
  return 0;
}
