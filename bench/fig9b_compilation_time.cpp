//===- bench/fig9b_compilation_time.cpp - Paper Figure 9b --------------------------------===//
//
// Compilation time split for YOLO-V4 into Fusion, Profiling, and Tuning:
//  - TVM-like: pattern fusion + a large auto-tuning budget (AutoTVM's
//    exhaustive schedule search).
//  - DNNF w/o db: mapping-type fusion + measured profiling for yellow
//    candidates + the GA tuner seeded from profiling results.
//  - DNNF w/ db: identical, but the profiling database is pre-computed so
//    yellow decisions resolve with lookups.
// Budgets are scaled down uniformly; the paper's claim is the *split*
// (Fusion invisible, Profiling collapses with the database, Tuning
// dominates), which survives scaling.
//
// `--json <path>` switches to the persistence-era reading of the same
// figure: the up-front planning cost should be paid once, not per process
// start. For every zoo model it measures a cold compile (cache miss: full
// pipeline + artifact store) against a warm compile (cache hit: artifact
// load, no planning) through the on-disk compilation cache, and emits the
// cold/warm times as machine-readable JSON (BENCH_fig9b.json in CI,
// uploaded as an artifact). Exits non-zero if any warm compile misses the
// cache.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "profiler/ProfilingOracle.h"
#include "serialize/CompilationCache.h"
#include "serialize/ModelSerializer.h"
#include "support/FileIO.h"
#include "tuning/AutoTuner.h"

#include <cstring>
#include <unistd.h>

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

/// Tunes representative GEMM shapes of the model's compute kernels.
double runTuning(int Generations) {
  TuneOptions Opt;
  Opt.Generations = Generations;
  Opt.Population = 8;
  double TotalMs = 0;
  for (auto [M, N, K] : {std::tuple<int64_t, int64_t, int64_t>{64, 256, 128},
                         {128, 128, 128},
                         {32, 512, 64}}) {
    TuneResult R = tuneMatmul(M, N, K, Opt);
    TotalMs += R.WallMs;
  }
  return TotalMs;
}

/// Cold-vs-warm compile across the model zoo through the compilation
/// cache, emitted as JSON. Returns a process exit code.
int emitColdWarmJson(const char *Path) {
  std::string CacheDir =
      "/tmp/dnnf_fig9b_cache_" + std::to_string(getpid());
  FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return 1;
  }
  // Compilation is single-threaded; host_cpus records the machine the
  // committed trajectory numbers came from (the 1-CPU-host caveat).
  std::fprintf(Out,
               "{\n  \"bench\": \"fig9b_cold_warm_compile\",\n"
               "  \"format_version\": %u,\n  \"host_cpus\": %u,\n"
               "  \"threads\": 1,\n  \"models\": [\n",
               SerializedFormatVersion, std::thread::hardware_concurrency());
  TablePrinter T({"Model", "Cold ms", "Warm ms", "Speedup", "Artifact MB"});
  const std::vector<ModelZooEntry> &Zoo = modelZoo();
  bool AllHit = true;
  double TotalCold = 0.0, TotalWarm = 0.0;
  for (size_t I = 0; I < Zoo.size(); ++I) {
    const std::string &Name = Zoo[I].Info.Name;
    CompileOptions Opt;
    Opt.CacheDir = CacheDir;
    // Key computed once, outside the timed sections (the timed compiles
    // fingerprint internally anyway; this copy is only for pathForKey).
    Graph G = Zoo[I].Build();
    uint64_t Key = CompilationCache::fingerprint(G, Opt);

    WallTimer ColdTimer;
    CompiledModel Cold = cantFail(compileModel(std::move(G), Opt));
    double ColdMs = ColdTimer.millis();

    WallTimer WarmTimer;
    CompiledModel Warm = cantFail(compileModel(Zoo[I].Build(), Opt));
    double WarmMs = WarmTimer.millis();

    if (Cold.CacheHit || !Warm.CacheHit) {
      std::fprintf(stderr, "%s: cache behaved unexpectedly (cold hit=%d, "
                           "warm hit=%d)\n",
                   Name.c_str(), static_cast<int>(Cold.CacheHit),
                   static_cast<int>(Warm.CacheHit));
      AllHit = false;
    }
    std::string ArtifactPath = CompilationCache(CacheDir).pathForKey(Key);
    Expected<std::string> Artifact = readFileBytes(ArtifactPath);
    int64_t ArtifactBytes =
        Artifact.ok() ? static_cast<int64_t>(Artifact->size()) : 0;
    removeFileIfExists(ArtifactPath);

    TotalCold += ColdMs;
    TotalWarm += WarmMs;
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"cold_compile_ms\": %.4f, "
                 "\"warm_compile_ms\": %.4f, \"speedup\": %.3f, "
                 "\"artifact_bytes\": %lld, \"cache_hit\": %s}%s\n",
                 Name.c_str(), ColdMs, WarmMs,
                 WarmMs > 0.0 ? ColdMs / WarmMs : 0.0,
                 static_cast<long long>(ArtifactBytes),
                 Warm.CacheHit ? "true" : "false",
                 I + 1 < Zoo.size() ? "," : "");
    std::fflush(Out);
    T.addRow({Name, fmtMs(ColdMs), fmtMs(WarmMs),
              fmtRatio(WarmMs > 0.0 ? ColdMs / WarmMs : 0.0),
              fmtMb(ArtifactBytes)});
  }
  std::fprintf(Out,
               "  ],\n  \"total_cold_ms\": %.4f,\n"
               "  \"total_warm_ms\": %.4f\n}\n",
               TotalCold, TotalWarm);
  std::fclose(Out);
  rmdir(CacheDir.c_str());

  printHeading("Figure 9b (persistence): cold vs warm compile via the "
               "on-disk compilation cache",
               "Cold = full planning pipeline + artifact store; warm = "
               "artifact load, no planning. Zoo-wide.");
  T.print();
  std::printf("\ntotal: cold %.1f ms, warm %.1f ms (%.2fx)\nJSON written "
              "to %s\n",
              TotalCold, TotalWarm,
              TotalWarm > 0.0 ? TotalCold / TotalWarm : 0.0, Path);
  return AllHit ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      return emitColdWarmJson(argv[I + 1]);
  printHeading("Figure 9b: compilation time split (YOLO-V4)",
               "Milliseconds per phase; budgets scaled down uniformly from "
               "the paper's hours.");
  auto Build = [] { return buildModel("YOLO-V4"); };
  TablePrinter T({"Pipeline", "Fusion (ms)", "Profiling (ms)", "Tuning (ms)",
                  "Total (ms)", "Profile DB entries"});

  // TVM-like: pattern fusion, no profiling, big tuning budget.
  {
    WallTimer FusionTimer;
    Graph G = Build();
    FusionPlan Plan = fixedPatternFusion(G, BaselineFramework::TvmLike);
    double FusionMs = FusionTimer.millis();
    double TuningMs = runTuning(/*Generations=*/12);
    (void)Plan;
    T.addRow({"TVM-like", fmtMs(FusionMs), fmtMs(0.0), fmtMs(TuningMs),
              fmtMs(FusionMs + TuningMs), "0"});
  }

  std::string DbPath = "/tmp/dnnf_profile_db_fig9b.txt";
  std::remove(DbPath.c_str());

  // DNNF without a pre-existing profiling database.
  int DbEntries = 0;
  {
    ProfileDb Db;
    ProfilingOracle Oracle(Db, /*Repeats=*/2);
    WallTimer CompileTimer;
    CompileOptions Opt;
    CompiledModel M = cantFail(compileModel(Build(), Opt, &Oracle));
    double TotalCompileMs = CompileTimer.millis();
    double ProfilingMs = Oracle.measurementMs();
    double FusionMs = TotalCompileMs - ProfilingMs;
    double TuningMs = runTuning(/*Generations=*/4);
    Db.store(DbPath);
    DbEntries = Db.size();
    T.addRow({"DNNF (w/o db)", fmtMs(FusionMs), fmtMs(ProfilingMs),
              fmtMs(TuningMs), fmtMs(FusionMs + ProfilingMs + TuningMs),
              fmtCount(DbEntries)});
  }

  // DNNF with the pre-computed database: profiling becomes lookups.
  {
    ProfileDb Db;
    Db.load(DbPath);
    ProfilingOracle Oracle(Db, /*Repeats=*/2);
    WallTimer CompileTimer;
    CompileOptions Opt;
    CompiledModel M = cantFail(compileModel(Build(), Opt, &Oracle));
    double TotalCompileMs = CompileTimer.millis();
    double ProfilingMs = Oracle.measurementMs();
    double FusionMs = TotalCompileMs - ProfilingMs;
    double TuningMs = runTuning(/*Generations=*/4);
    (void)M;
    T.addRow({"DNNF (w/ db)", fmtMs(FusionMs), fmtMs(ProfilingMs),
              fmtMs(TuningMs), fmtMs(FusionMs + ProfilingMs + TuningMs),
              fmtCount(Db.size())});
  }
  std::remove(DbPath.c_str());
  T.print();
  std::printf("\nExpected shape (paper): Fusion itself is negligible; the "
              "profiling phase collapses once the database exists; tuning "
              "dominates what remains.\n");
  return 0;
}
