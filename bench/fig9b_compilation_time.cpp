//===- bench/fig9b_compilation_time.cpp - Paper Figure 9b --------------------------------===//
//
// Compilation time split for YOLO-V4 into Fusion, Profiling, and Tuning:
//  - TVM-like: pattern fusion + a large auto-tuning budget (AutoTVM's
//    exhaustive schedule search).
//  - DNNF w/o db: mapping-type fusion + measured profiling for yellow
//    candidates + the GA tuner seeded from profiling results.
//  - DNNF w/ db: identical, but the profiling database is pre-computed so
//    yellow decisions resolve with lookups.
// Budgets are scaled down uniformly; the paper's claim is the *split*
// (Fusion invisible, Profiling collapses with the database, Tuning
// dominates), which survives scaling.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "profiler/ProfilingOracle.h"
#include "tuning/AutoTuner.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

namespace {

/// Tunes representative GEMM shapes of the model's compute kernels.
double runTuning(int Generations) {
  TuneOptions Opt;
  Opt.Generations = Generations;
  Opt.Population = 8;
  double TotalMs = 0;
  for (auto [M, N, K] : {std::tuple<int64_t, int64_t, int64_t>{64, 256, 128},
                         {128, 128, 128},
                         {32, 512, 64}}) {
    TuneResult R = tuneMatmul(M, N, K, Opt);
    TotalMs += R.WallMs;
  }
  return TotalMs;
}

} // namespace

int main() {
  printHeading("Figure 9b: compilation time split (YOLO-V4)",
               "Milliseconds per phase; budgets scaled down uniformly from "
               "the paper's hours.");
  auto Build = [] { return buildModel("YOLO-V4"); };
  TablePrinter T({"Pipeline", "Fusion (ms)", "Profiling (ms)", "Tuning (ms)",
                  "Total (ms)", "Profile DB entries"});

  // TVM-like: pattern fusion, no profiling, big tuning budget.
  {
    WallTimer FusionTimer;
    Graph G = Build();
    FusionPlan Plan = fixedPatternFusion(G, BaselineFramework::TvmLike);
    double FusionMs = FusionTimer.millis();
    double TuningMs = runTuning(/*Generations=*/12);
    (void)Plan;
    T.addRow({"TVM-like", fmtMs(FusionMs), fmtMs(0.0), fmtMs(TuningMs),
              fmtMs(FusionMs + TuningMs), "0"});
  }

  std::string DbPath = "/tmp/dnnf_profile_db_fig9b.txt";
  std::remove(DbPath.c_str());

  // DNNF without a pre-existing profiling database.
  int DbEntries = 0;
  {
    ProfileDb Db;
    ProfilingOracle Oracle(Db, /*Repeats=*/2);
    WallTimer CompileTimer;
    CompileOptions Opt;
    CompiledModel M = cantFail(compileModel(Build(), Opt, &Oracle));
    double TotalCompileMs = CompileTimer.millis();
    double ProfilingMs = Oracle.measurementMs();
    double FusionMs = TotalCompileMs - ProfilingMs;
    double TuningMs = runTuning(/*Generations=*/4);
    Db.store(DbPath);
    DbEntries = Db.size();
    T.addRow({"DNNF (w/o db)", fmtMs(FusionMs), fmtMs(ProfilingMs),
              fmtMs(TuningMs), fmtMs(FusionMs + ProfilingMs + TuningMs),
              fmtCount(DbEntries)});
  }

  // DNNF with the pre-computed database: profiling becomes lookups.
  {
    ProfileDb Db;
    Db.load(DbPath);
    ProfilingOracle Oracle(Db, /*Repeats=*/2);
    WallTimer CompileTimer;
    CompileOptions Opt;
    CompiledModel M = cantFail(compileModel(Build(), Opt, &Oracle));
    double TotalCompileMs = CompileTimer.millis();
    double ProfilingMs = Oracle.measurementMs();
    double FusionMs = TotalCompileMs - ProfilingMs;
    double TuningMs = runTuning(/*Generations=*/4);
    (void)M;
    T.addRow({"DNNF (w/ db)", fmtMs(FusionMs), fmtMs(ProfilingMs),
              fmtMs(TuningMs), fmtMs(FusionMs + ProfilingMs + TuningMs),
              fmtCount(Db.size())});
  }
  std::remove(DbPath.c_str());
  T.print();
  std::printf("\nExpected shape (paper): Fusion itself is negligible; the "
              "profiling phase collapses once the database exists; tuning "
              "dominates what remains.\n");
  return 0;
}
