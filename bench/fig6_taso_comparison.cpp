//===- bench/fig6_taso_comparison.cpp - Paper Figure 6 --------------------------------===//
//
// Speedup of DNNFusion over TASO-like optimization: the same substitution
// rules applied fusion-unaware, then executed under TFLite-style
// fixed-pattern fusion ("models optimized by TASO and then executed on
// TFLite", paper §5.2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Figure 6: speedup over TASO-optimized execution (CPU)",
               "TASO-like = substitution rules without fusion coupling, "
               "then TFLite-style pattern fusion. Eleven models (the ones "
               "TFLite supports in the paper).");
  const char *Models[] = {"EfficientNet-B0", "VGG-16", "MobileNetV1-SSD",
                          "YOLO-V4",         "U-Net",  "TinyBERT",
                          "DistilBERT",      "ALBERT", "BERT-base",
                          "MobileBERT",      "GPT-2"};
  TablePrinter T({"Model", "TASO+TFLite (ms)", "DNNF (ms)", "Speedup"});
  for (const char *Name : Models) {
    auto Build = [&] { return buildModel(Name); };
    // TASO-like pipeline.
    Graph G = Build();
    optimizeTasoLike(G);
    FusionPlan Plan = fixedPatternFusion(G, BaselineFramework::TfliteLike);
    CompiledModel Taso = cantFail(compileModelWithPlan(std::move(G), std::move(Plan)));
    double TasoMs = medianLatencyMs(Taso);
    // DNNFusion.
    CompiledModel Dnnf = compileConfig(Build, Config::Dnnf);
    double DnnfMs = medianLatencyMs(Dnnf);
    T.addRow({Name, fmtMs(TasoMs), fmtMs(DnnfMs), fmtRatio(TasoMs / DnnfMs)});
    std::fflush(stdout);
  }
  T.print();
  std::printf("\nExpected shape (paper): DNNF wins on every model because "
              "its rewriting is designed to *enable fusion*, which TASO's "
              "substitution search does not target.\n");
  return 0;
}
