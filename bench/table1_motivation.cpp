//===- bench/table1_motivation.cpp - Paper Table 1 ---------------------------------===//
//
// "The relation of overall computation, layer count, and execution
// efficiency": five models run under the fixed-pattern baseline (OurB+);
// deeper models achieve lower FLOP/s despite comparable total FLOPs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Table 1: blessing and curse of deep layers",
               "Models under the fixed-pattern fusion baseline (OurB+). The "
               "paper's claim: layer count, not total FLOPs, limits achieved "
               "FLOP/s.");
  TablePrinter T({"Model", "#Total layer", "IRS size (MB)", "#FLOPS (M)",
                  "Speed (GFLOPs/S)", "Latency (ms)"});
  for (const char *Name : {"VGG-16", "YOLO-V4", "DistilBERT", "MobileBERT",
                           "GPT-2"}) {
    auto Build = [&] { return buildModel(Name); };
    Graph G = Build();
    CompiledModel M = compileConfig(Build, Config::OurBPlus);
    double Ms = medianLatencyMs(M);
    double GFlops = static_cast<double>(G.totalFlops()) / (Ms * 1e6);
    T.addRow({Name, fmtCount(G.countLayers()), fmtMb(G.intermediateBytes()),
              formatString("%.1f", static_cast<double>(G.totalFlops()) / 1e6),
              formatString("%.2f", GFlops), fmtMs(Ms)});
  }
  T.print();
  std::printf("\nExpected shape (paper): VGG-16 sustains the highest FLOP/s; "
              "the deep transformer exports (MobileBERT, GPT-2) the lowest.\n");
  return 0;
}
