//===- bench/fig9a_utilization.cpp - Paper Figure 9a -----------------------------------===//
//
// Modeled CPU and GPU utilization on YOLO-V4 per framework: busy (compute/
// memory) time divided by total time including per-kernel dispatch
// overhead. Fusion raises utilization by amortizing dispatch over
// coarser-grained kernels.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading("Figure 9a: CPU and GPU utilization (YOLO-V4)",
               "Utilization = busy time / (busy + dispatch overhead) on the "
               "Snapdragon 865 device models.");
  auto Build = [] { return buildModel("YOLO-V4"); };
  TablePrinter T({"Framework", "CPU util (%)", "GPU util (%)", "Kernels"});
  DeviceProfile Cpu = snapdragon865Cpu(), Gpu = snapdragon865Gpu();
  for (Config C : {Config::MnnLike, Config::TvmLike, Config::TfliteLike,
                   Config::PytorchLike, Config::Dnnf}) {
    CompiledModel M = compileConfig(Build, C);
    T.addRow({configName(C),
              formatString("%.1f", modelUtilizationPercent(M, Cpu)),
              formatString("%.1f", modelUtilizationPercent(M, Gpu)),
              fmtCount(M.kernelLaunches())});
  }
  T.print();
  std::printf("\nExpected shape (paper): DNNF highest on both processors; "
              "GPU utilization reacts more strongly to kernel count.\n");
  return 0;
}
