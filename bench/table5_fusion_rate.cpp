//===- bench/table5_fusion_rate.cpp - Paper Table 5 ----------------------------------===//
//
// Fusion rate evaluation: layer counts and intermediate-result sizes
// before/after fusion for all 15 models under the four emulated framework
// pattern sets and DNNFusion.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace dnnfusion;
using namespace dnnfusion::bench;

int main() {
  printHeading(
      "Table 5: fusion rate evaluation",
      "Layer counts before fusion (CIL/MIL/Total, IRS MB) and fused layer "
      "counts per framework. Fusion rate = total / DNNF fused count.");
  TablePrinter T({"Model", "#CIL", "#MIL", "#Total", "IRS(MB)", "MNN", "TVM",
                  "TFLite", "PyTorch", "DNNF", "IRS after(MB)", "Rate"});
  for (const ModelZooEntry &E : modelZoo()) {
    Graph G = E.Build();
    int64_t Total = G.countLayers();
    int64_t Cil = G.countComputeIntensiveLayers();
    std::vector<std::string> Row = {
        E.Info.Name, fmtCount(Cil), fmtCount(Total - Cil), fmtCount(Total),
        fmtMb(G.intermediateBytes())};
    for (Config C : {Config::MnnLike, Config::TvmLike, Config::TfliteLike,
                     Config::PytorchLike}) {
      CompiledModel M = compileConfig(E.Build, C);
      Row.push_back(fmtCount(M.Plan.fusedLayerCount()));
    }
    CompiledModel Dnnf = compileConfig(E.Build, Config::Dnnf);
    Row.push_back(fmtCount(Dnnf.Plan.fusedLayerCount()));
    Row.push_back(fmtMb(Dnnf.Plan.intermediateBytesAfterFusion(Dnnf.G)));
    Row.push_back(fmtRatio(static_cast<double>(Total) /
                           static_cast<double>(Dnnf.Plan.fusedLayerCount())));
    T.addRow(Row);
  }
  T.print();
  std::printf(
      "\nExpected shape (paper): DNNF fuses most everywhere; gains are "
      "largest for the R-CNNs and transformers (memory-intensive-layer "
      "dominated), smallest for the compute-dominated 3D CNNs.\n");
  return 0;
}
